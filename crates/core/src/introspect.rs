//! The cluster's live introspection plane: the unified metrics
//! registry plus the embedded HTTP endpoint that serves it.
//!
//! Every [`Cluster`](crate::Cluster) owns one [`Introspect`]. Runs
//! publish into its [`MetricsRegistry`] (net/disk counters live, job
//! metrics at completion, telemetry gauges bridged while a job runs)
//! and, when enabled, a loopback [`HttpServer`] exposes three routes:
//!
//! * `/metrics` — every registered series in Prometheus text format,
//!   scrapeable mid-run;
//! * `/healthz` — JSON run-state: jobs running/completed/failed and
//!   the most recent unresolved watchdog incident (503 while one is
//!   active);
//! * `/doctor` — a live flight-recorder dump (`FlightRecord` JSON)
//!   built from the current run's trace ring, audit ledger, and
//!   gauges — what `tracedump --doctor` reads post-mortem, but
//!   available while the job is still wedged.
//!
//! The endpoint is off by default so tests and benchmarks stay
//! hermetic; opt in with `HAMR_HTTP=auto` (ephemeral port),
//! `HAMR_HTTP=<port>`, or [`Cluster::serve_introspection`].

use hamr_trace::{
    AlertEngine, AlertEvent, AlertRule, AlertState, Audit, FlightRecord, GaugeValue, HttpResponse,
    HttpServer, Journal, JournalRecord, MetricsRegistry, RingSink, RouteHandler, Snapshot,
    StatsSnapshot, Telemetry,
};
use std::net::SocketAddr;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Escape a string for embedding in a JSON value.
fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            c if (c as u32) < 0x20 => vec![' '],
            c => vec![c],
        })
        .collect()
}

/// How the embedded endpoint is configured, usually via `HAMR_HTTP`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HttpMode {
    /// No listener (the default — tests stay hermetic).
    #[default]
    Off,
    /// Bind an ephemeral loopback port.
    Auto,
    /// Bind this specific loopback port.
    Port(u16),
}

impl HttpMode {
    /// Parse `HAMR_HTTP=off|auto|<port>` (unset means `Off`).
    pub fn from_env() -> Self {
        match std::env::var("HAMR_HTTP").as_deref() {
            Err(_) | Ok("off") | Ok("") => HttpMode::Off,
            Ok("auto") => HttpMode::Auto,
            Ok(other) => match other.parse::<u16>() {
                Ok(port) => HttpMode::Port(port),
                Err(_) => panic!("HAMR_HTTP must be off|auto|<port>, got '{other}'"),
            },
        }
    }
}

/// Live cluster run-state, served at `/healthz`.
#[derive(Debug, Clone, Default)]
pub struct Health {
    /// Jobs currently inside `run_inner`.
    pub running_jobs: u32,
    pub jobs_completed: u64,
    pub jobs_failed: u64,
    /// Warn-only watchdog incidents observed (stragglers).
    pub warnings: u64,
    /// The most recent liveness incident (backpressure/hang) not yet
    /// cleared by a cleanly completing job. `/healthz` serves 503
    /// while this is set.
    pub incident: Option<String>,
    /// When `incident` was posted, on the introspection clock
    /// ([`Introspect::now_us`]) — lets `/healthz` report how long the
    /// cluster has been wedged.
    pub incident_since_us: Option<u64>,
    /// When a job last completed cleanly, on the same clock.
    pub last_clean_completion_us: Option<u64>,
}

impl Health {
    /// True when no liveness incident is outstanding.
    pub fn healthy(&self) -> bool {
        self.incident.is_none()
    }

    /// Render for `/healthz`, computing ages against `now_us` (the
    /// introspection clock at request time).
    pub fn to_json_at(&self, now_us: u64) -> String {
        let mut out = format!(
            "{{\"status\":\"{}\",\"running_jobs\":{},\"jobs_completed\":{},\
             \"jobs_failed\":{},\"warnings\":{},\"now_us\":{}",
            if self.healthy() { "ok" } else { "incident" },
            self.running_jobs,
            self.jobs_completed,
            self.jobs_failed,
            self.warnings,
            now_us,
        );
        if let Some(incident) = &self.incident {
            out.push_str(&format!(",\"incident\":\"{}\"", json_escape(incident)));
        }
        match self.incident_since_us {
            Some(since) => out.push_str(&format!(
                ",\"incident_age_us\":{}",
                now_us.saturating_sub(since)
            )),
            None => out.push_str(",\"incident_age_us\":null"),
        }
        match self.last_clean_completion_us {
            Some(at) => out.push_str(&format!(
                ",\"last_clean_completion_us\":{},\"last_clean_completion_age_us\":{}",
                at,
                now_us.saturating_sub(at)
            )),
            None => out.push_str(
                ",\"last_clean_completion_us\":null,\"last_clean_completion_age_us\":null",
            ),
        }
        out.push('}');
        out
    }
}

/// Alert-rule evaluation shared between the watchdog epoch hook, job
/// completion, and the `/alerts` endpoint: one engine, a transition
/// log, and journaling of every transition.
#[derive(Default)]
pub(crate) struct AlertCenter {
    engine: Mutex<AlertEngine>,
    log: Mutex<Vec<AlertEvent>>,
}

impl AlertCenter {
    fn new() -> Self {
        AlertCenter {
            engine: Mutex::new(AlertEngine::with_default_rules()),
            log: Mutex::new(Vec::new()),
        }
    }

    /// Replace the rule set (resets all rule state; the transition log
    /// is kept).
    pub fn set_rules(&self, rules: Vec<AlertRule>) {
        self.engine
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .set_rules(rules);
    }

    /// Evaluate against a snapshot; journal and log any transitions.
    pub fn evaluate(
        &self,
        snap: &Snapshot,
        t_us: u64,
        journal: Option<&Arc<Journal>>,
    ) -> Vec<AlertEvent> {
        let events = self
            .engine
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .evaluate(snap, t_us);
        if events.is_empty() {
            return events;
        }
        if let Some(journal) = journal {
            for ev in &events {
                journal.append(&JournalRecord::Alert {
                    rule: ev.rule.clone(),
                    firing: ev.firing,
                    t_us: ev.t_us,
                    value: ev.value,
                    threshold: ev.threshold,
                    detail: ev.detail.clone(),
                });
            }
        }
        self.log
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .extend(events.iter().cloned());
        events
    }

    pub fn states(&self) -> Vec<AlertState> {
        self.engine
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .states()
    }

    /// Every transition observed since the cluster was built.
    pub fn log(&self) -> Vec<AlertEvent> {
        self.log.lock().unwrap_or_else(|p| p.into_inner()).clone()
    }

    /// Render for `/alerts`.
    pub fn to_json(&self, now_us: u64) -> String {
        let states = self.states();
        let mut out = format!(
            "{{\"firing\":{},\"now_us\":{now_us},\"rules\":[",
            states.iter().filter(|s| s.firing).count()
        );
        for (i, s) in states.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":\"{}\",\"firing\":{},\"since_us\":{},\"value\":{},\
                 \"threshold\":{},\"fired_total\":{},\"detail\":\"{}\"}}",
                json_escape(&s.rule),
                s.firing,
                s.since_us
                    .map(|v| v.to_string())
                    .unwrap_or_else(|| "null".into()),
                if s.last_value.is_finite() {
                    format!("{:.6}", s.last_value)
                } else {
                    "null".into()
                },
                format_args!("{:.6}", s.threshold),
                s.fired_total,
                json_escape(&s.detail),
            ));
        }
        out.push_str("]}");
        out
    }
}

/// What `/doctor` reads: handles into the most recent (possibly still
/// running) supervised or profiled run.
#[derive(Default)]
pub(crate) struct LiveRun {
    pub job: String,
    pub engine: &'static str,
    pub ring: Option<Arc<RingSink>>,
    pub telemetry: Option<Telemetry>,
    pub audit: Option<Audit>,
}

/// Newest events kept in a live `/doctor` response.
const DOCTOR_KEEP_LAST: usize = 200;

/// The introspection plane one cluster owns: registry + health +
/// live-run handles + the (optional) embedded HTTP server.
pub(crate) struct Introspect {
    pub registry: MetricsRegistry,
    pub health: Arc<Mutex<Health>>,
    pub live: Arc<Mutex<LiveRun>>,
    pub alerts: Arc<AlertCenter>,
    /// Data-plane statistics of the most recently completed job
    /// (per-edge sketches + lineage samples), served at `/stats`.
    pub stats: Arc<Mutex<Option<StatsSnapshot>>>,
    /// The flight journal, when enabled (`HAMR_JOURNAL` or
    /// `Cluster::enable_journal`).
    journal: Arc<Mutex<Option<Arc<Journal>>>>,
    /// The introspection clock's origin: `/healthz` ages,
    /// `incident_since_us`, and alert timestamps all count
    /// microseconds from here.
    epoch: Instant,
    server: Mutex<Option<HttpServer>>,
}

impl Introspect {
    pub fn new() -> Self {
        Introspect {
            registry: MetricsRegistry::new(),
            health: Arc::new(Mutex::new(Health::default())),
            live: Arc::new(Mutex::new(LiveRun::default())),
            alerts: Arc::new(AlertCenter::new()),
            stats: Arc::new(Mutex::new(None)),
            journal: Arc::new(Mutex::new(None)),
            epoch: Instant::now(),
            server: Mutex::new(None),
        }
    }

    /// Microseconds since this cluster's introspection plane came up.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Install (or replace) the flight journal.
    pub fn set_journal(&self, journal: Option<Arc<Journal>>) {
        *self.journal.lock().unwrap_or_else(|p| p.into_inner()) = journal;
    }

    /// The current journal handle, if one is enabled.
    pub fn journal(&self) -> Option<Arc<Journal>> {
        self.journal
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// Evaluate the alert rules against the live registry, journaling
    /// and logging any transitions. Called from the watchdog epoch
    /// hook, at job completion, and on every `/alerts` scrape.
    pub fn eval_alerts(&self) -> Vec<AlertEvent> {
        self.alerts.evaluate(
            &self.registry.snapshot(),
            self.now_us(),
            self.journal().as_ref(),
        )
    }

    /// Start serving per [`HttpMode::from_env`]. A bind failure is
    /// reported on stderr, never fatal — introspection must not take a
    /// job down.
    pub fn serve_from_env(&self) {
        let port = match HttpMode::from_env() {
            HttpMode::Off => return,
            HttpMode::Auto => 0,
            HttpMode::Port(p) => p,
        };
        match self.serve(port) {
            // The ephemeral port is useless unless announced: `hamr top`
            // needs an address to poll.
            Ok(addr) => eprintln!("hamr: introspection endpoint on http://{addr}/metrics"),
            Err(e) => {
                eprintln!("hamr: introspection endpoint failed to bind port {port}: {e}")
            }
        }
    }

    /// Bind `127.0.0.1:port` (0 = ephemeral) and serve `/metrics`,
    /// `/healthz`, `/alerts`, `/doctor`, `/stats`. Replaces any
    /// previous server.
    pub fn serve(&self, port: u16) -> std::io::Result<SocketAddr> {
        let registry = self.registry.clone();
        let health = Arc::clone(&self.health);
        let live = Arc::clone(&self.live);
        let alerts = Arc::clone(&self.alerts);
        let journal = Arc::clone(&self.journal);
        let stats = Arc::clone(&self.stats);
        let epoch = self.epoch;
        let handler: RouteHandler = Arc::new(move |path| match path {
            "/metrics" | "/metrics/" => HttpResponse::text(registry.snapshot().to_prometheus()),
            "/healthz" | "/healthz/" => {
                let now_us = epoch.elapsed().as_micros() as u64;
                let health = health.lock().unwrap_or_else(|p| p.into_inner()).clone();
                let status = if health.healthy() { 200 } else { 503 };
                HttpResponse::json(health.to_json_at(now_us)).status(status)
            }
            "/alerts" | "/alerts/" => {
                // Scrapes evaluate too, so `/alerts` is live even when
                // no supervised run is driving epochs.
                let now_us = epoch.elapsed().as_micros() as u64;
                let j = journal.lock().unwrap_or_else(|p| p.into_inner()).clone();
                alerts.evaluate(&registry.snapshot(), now_us, j.as_ref());
                HttpResponse::json(alerts.to_json(now_us))
            }
            "/doctor" | "/doctor/" => {
                let live = live.lock().unwrap_or_else(|p| p.into_inner());
                let events = live.ring.as_ref().map(|r| r.peek()).unwrap_or_default();
                let dropped = live.ring.as_ref().map(|r| r.dropped()).unwrap_or(0);
                let report = live
                    .audit
                    .as_ref()
                    .map(|a| a.report())
                    .unwrap_or_else(|| Audit::disabled().report());
                let gauges = live
                    .telemetry
                    .as_ref()
                    .map(|t| {
                        t.gauge_values()
                            .into_iter()
                            .map(|(name, node, value)| GaugeValue { name, node, value })
                            .collect()
                    })
                    .unwrap_or_default();
                let record = FlightRecord::capture(
                    live.job.clone(),
                    if live.engine.is_empty() {
                        "hamr"
                    } else {
                        live.engine
                    },
                    None,
                    None,
                    &events,
                    DOCTOR_KEEP_LAST,
                    dropped,
                    report,
                    gauges,
                );
                HttpResponse::json(record.to_json())
            }
            "/stats" | "/stats/" => {
                let stats = stats.lock().unwrap_or_else(|p| p.into_inner());
                match &*stats {
                    Some(snap) => HttpResponse::json(snap.to_json()),
                    None => HttpResponse::json("{\"stats\":null}".to_string()),
                }
            }
            _ => HttpResponse::not_found(),
        });
        let server = HttpServer::bind(port, handler)?;
        let addr = server.addr();
        *self.server.lock().unwrap_or_else(|p| p.into_inner()) = Some(server);
        Ok(addr)
    }

    /// Address of the running server, if any.
    pub fn addr(&self) -> Option<SocketAddr> {
        self.server
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .as_ref()
            .map(|s| s.addr())
    }

    /// Stop and drop the server (idempotent).
    pub fn stop(&self) {
        if let Some(mut server) = self.server.lock().unwrap_or_else(|p| p.into_inner()).take() {
            server.stop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hamr_trace::{http_get, parse_prometheus, AlertRule, Labels};
    use std::time::Duration;

    #[test]
    fn http_mode_parses_env_forms() {
        std::env::remove_var("HAMR_HTTP");
        assert_eq!(HttpMode::from_env(), HttpMode::Off);
        std::env::set_var("HAMR_HTTP", "off");
        assert_eq!(HttpMode::from_env(), HttpMode::Off);
        std::env::set_var("HAMR_HTTP", "auto");
        assert_eq!(HttpMode::from_env(), HttpMode::Auto);
        std::env::set_var("HAMR_HTTP", "9099");
        assert_eq!(HttpMode::from_env(), HttpMode::Port(9099));
        std::env::remove_var("HAMR_HTTP");
    }

    #[test]
    fn health_json_reports_incidents_with_ages() {
        let mut h = Health::default();
        assert!(h.healthy());
        let json = h.to_json_at(500);
        assert!(json.contains("\"status\":\"ok\""), "{json}");
        assert!(json.contains("\"incident_age_us\":null"), "{json}");
        assert!(json.contains("\"last_clean_completion_us\":null"), "{json}");
        h.last_clean_completion_us = Some(400);
        h.incident = Some("backpressure on \"edge 1\"".into());
        h.incident_since_us = Some(100);
        assert!(!h.healthy());
        let json = h.to_json_at(500);
        assert!(json.contains("\"status\":\"incident\""), "{json}");
        assert!(json.contains("backpressure"), "{json}");
        assert!(json.contains("\"incident_age_us\":400"), "{json}");
        assert!(json.contains("\"last_clean_completion_us\":400"), "{json}");
        assert!(
            json.contains("\"last_clean_completion_age_us\":100"),
            "{json}"
        );
    }

    #[test]
    fn endpoint_serves_metrics_healthz_and_doctor() {
        let intro = Introspect::new();
        intro
            .registry
            .counter("demo_total", Labels::new().engine("hamr"))
            .add(7);
        let addr = intro.serve(0).expect("bind ephemeral");
        assert_eq!(intro.addr(), Some(addr));
        let t = Duration::from_secs(2);
        let (status, body) = http_get(addr, "/metrics", t).expect("GET /metrics");
        assert_eq!(status, 200);
        let samples = parse_prometheus(&body).expect("valid Prometheus text");
        assert!(
            samples
                .iter()
                .any(|s| s.name == "hamr_demo_total" && s.value == 7.0),
            "{body}"
        );
        let (status, body) = http_get(addr, "/healthz", t).expect("GET /healthz");
        assert_eq!(status, 200);
        assert!(body.contains("\"status\":\"ok\""));
        // An incident flips /healthz to 503 until cleared.
        intro
            .health
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .incident = Some("hang".into());
        let (status, _) = http_get(addr, "/healthz", t).expect("GET /healthz");
        assert_eq!(status, 503);
        // /doctor renders even with no live run attached.
        let (status, body) = http_get(addr, "/doctor", t).expect("GET /doctor");
        assert_eq!(status, 200);
        assert!(body.contains("\"dropped_events\""), "{body}");
        // /alerts serves the default rule set, silent on this registry.
        let (status, body) = http_get(addr, "/alerts", t).expect("GET /alerts");
        assert_eq!(status, 200);
        assert!(body.contains("\"firing\":0"), "{body}");
        assert!(body.contains("queue-depth-high-water"), "{body}");
        assert!(body.contains("task-p99-latency-slo"), "{body}");
        intro.stop();
        intro.stop();
    }

    #[test]
    fn alerts_endpoint_reports_a_firing_rule() {
        let intro = Introspect::new();
        intro.alerts.set_rules(vec![AlertRule::gauge_high_water(
            "stuck-gauge",
            "deferred_bins",
            1,
            2,
        )]);
        let g = intro
            .registry
            .gauge("deferred_bins", Labels::new().node(0).flowlet(1));
        g.add(5);
        // Two evaluations over threshold: the rule fires and the
        // transition lands in the log.
        assert!(intro.eval_alerts().is_empty());
        let fired = intro.eval_alerts();
        assert_eq!(fired.len(), 1);
        assert!(fired[0].firing);
        assert_eq!(intro.alerts.states().iter().filter(|s| s.firing).count(), 1);
        let addr = intro.serve(0).expect("bind");
        let (status, body) =
            http_get(addr, "/alerts", Duration::from_secs(2)).expect("GET /alerts");
        assert_eq!(status, 200);
        assert!(body.contains("\"firing\":1"), "{body}");
        assert!(body.contains("stuck-gauge"), "{body}");
        assert_eq!(intro.alerts.log().len(), 1);
        intro.stop();
    }
}
