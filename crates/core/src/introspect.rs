//! The cluster's live introspection plane: the unified metrics
//! registry plus the embedded HTTP endpoint that serves it.
//!
//! Every [`Cluster`](crate::Cluster) owns one [`Introspect`]. Runs
//! publish into its [`MetricsRegistry`] (net/disk counters live, job
//! metrics at completion, telemetry gauges bridged while a job runs)
//! and, when enabled, a loopback [`HttpServer`] exposes three routes:
//!
//! * `/metrics` — every registered series in Prometheus text format,
//!   scrapeable mid-run;
//! * `/healthz` — JSON run-state: jobs running/completed/failed and
//!   the most recent unresolved watchdog incident (503 while one is
//!   active);
//! * `/doctor` — a live flight-recorder dump (`FlightRecord` JSON)
//!   built from the current run's trace ring, audit ledger, and
//!   gauges — what `tracedump --doctor` reads post-mortem, but
//!   available while the job is still wedged.
//!
//! The endpoint is off by default so tests and benchmarks stay
//! hermetic; opt in with `HAMR_HTTP=auto` (ephemeral port),
//! `HAMR_HTTP=<port>`, or [`Cluster::serve_introspection`].

use hamr_trace::{
    Audit, FlightRecord, GaugeValue, HttpResponse, HttpServer, MetricsRegistry, RingSink,
    RouteHandler, Telemetry,
};
use std::net::SocketAddr;
use std::sync::{Arc, Mutex};

/// How the embedded endpoint is configured, usually via `HAMR_HTTP`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HttpMode {
    /// No listener (the default — tests stay hermetic).
    #[default]
    Off,
    /// Bind an ephemeral loopback port.
    Auto,
    /// Bind this specific loopback port.
    Port(u16),
}

impl HttpMode {
    /// Parse `HAMR_HTTP=off|auto|<port>` (unset means `Off`).
    pub fn from_env() -> Self {
        match std::env::var("HAMR_HTTP").as_deref() {
            Err(_) | Ok("off") | Ok("") => HttpMode::Off,
            Ok("auto") => HttpMode::Auto,
            Ok(other) => match other.parse::<u16>() {
                Ok(port) => HttpMode::Port(port),
                Err(_) => panic!("HAMR_HTTP must be off|auto|<port>, got '{other}'"),
            },
        }
    }
}

/// Live cluster run-state, served at `/healthz`.
#[derive(Debug, Clone, Default)]
pub struct Health {
    /// Jobs currently inside `run_inner`.
    pub running_jobs: u32,
    pub jobs_completed: u64,
    pub jobs_failed: u64,
    /// Warn-only watchdog incidents observed (stragglers).
    pub warnings: u64,
    /// The most recent liveness incident (backpressure/hang) not yet
    /// cleared by a cleanly completing job. `/healthz` serves 503
    /// while this is set.
    pub incident: Option<String>,
}

impl Health {
    /// True when no liveness incident is outstanding.
    pub fn healthy(&self) -> bool {
        self.incident.is_none()
    }

    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"status\":\"{}\",\"running_jobs\":{},\"jobs_completed\":{},\
             \"jobs_failed\":{},\"warnings\":{}",
            if self.healthy() { "ok" } else { "incident" },
            self.running_jobs,
            self.jobs_completed,
            self.jobs_failed,
            self.warnings,
        );
        if let Some(incident) = &self.incident {
            let escaped: String = incident
                .chars()
                .flat_map(|c| match c {
                    '"' => vec!['\\', '"'],
                    '\\' => vec!['\\', '\\'],
                    '\n' => vec!['\\', 'n'],
                    c if (c as u32) < 0x20 => vec![' '],
                    c => vec![c],
                })
                .collect();
            out.push_str(&format!(",\"incident\":\"{escaped}\""));
        }
        out.push('}');
        out
    }
}

/// What `/doctor` reads: handles into the most recent (possibly still
/// running) supervised or profiled run.
#[derive(Default)]
pub(crate) struct LiveRun {
    pub job: String,
    pub engine: &'static str,
    pub ring: Option<Arc<RingSink>>,
    pub telemetry: Option<Telemetry>,
    pub audit: Option<Audit>,
}

/// Newest events kept in a live `/doctor` response.
const DOCTOR_KEEP_LAST: usize = 200;

/// The introspection plane one cluster owns: registry + health +
/// live-run handles + the (optional) embedded HTTP server.
pub(crate) struct Introspect {
    pub registry: MetricsRegistry,
    pub health: Arc<Mutex<Health>>,
    pub live: Arc<Mutex<LiveRun>>,
    server: Mutex<Option<HttpServer>>,
}

impl Introspect {
    pub fn new() -> Self {
        Introspect {
            registry: MetricsRegistry::new(),
            health: Arc::new(Mutex::new(Health::default())),
            live: Arc::new(Mutex::new(LiveRun::default())),
            server: Mutex::new(None),
        }
    }

    /// Start serving per [`HttpMode::from_env`]. A bind failure is
    /// reported on stderr, never fatal — introspection must not take a
    /// job down.
    pub fn serve_from_env(&self) {
        let port = match HttpMode::from_env() {
            HttpMode::Off => return,
            HttpMode::Auto => 0,
            HttpMode::Port(p) => p,
        };
        match self.serve(port) {
            // The ephemeral port is useless unless announced: `hamr top`
            // needs an address to poll.
            Ok(addr) => eprintln!("hamr: introspection endpoint on http://{addr}/metrics"),
            Err(e) => {
                eprintln!("hamr: introspection endpoint failed to bind port {port}: {e}")
            }
        }
    }

    /// Bind `127.0.0.1:port` (0 = ephemeral) and serve `/metrics`,
    /// `/healthz`, `/doctor`. Replaces any previous server.
    pub fn serve(&self, port: u16) -> std::io::Result<SocketAddr> {
        let registry = self.registry.clone();
        let health = Arc::clone(&self.health);
        let live = Arc::clone(&self.live);
        let handler: RouteHandler = Arc::new(move |path| match path {
            "/metrics" | "/metrics/" => HttpResponse::text(registry.snapshot().to_prometheus()),
            "/healthz" | "/healthz/" => {
                let health = health.lock().unwrap_or_else(|p| p.into_inner()).clone();
                let status = if health.healthy() { 200 } else { 503 };
                HttpResponse::json(health.to_json()).status(status)
            }
            "/doctor" | "/doctor/" => {
                let live = live.lock().unwrap_or_else(|p| p.into_inner());
                let events = live.ring.as_ref().map(|r| r.peek()).unwrap_or_default();
                let dropped = live.ring.as_ref().map(|r| r.dropped()).unwrap_or(0);
                let report = live
                    .audit
                    .as_ref()
                    .map(|a| a.report())
                    .unwrap_or_else(|| Audit::disabled().report());
                let gauges = live
                    .telemetry
                    .as_ref()
                    .map(|t| {
                        t.gauge_values()
                            .into_iter()
                            .map(|(name, node, value)| GaugeValue { name, node, value })
                            .collect()
                    })
                    .unwrap_or_default();
                let record = FlightRecord::capture(
                    live.job.clone(),
                    if live.engine.is_empty() {
                        "hamr"
                    } else {
                        live.engine
                    },
                    None,
                    None,
                    &events,
                    DOCTOR_KEEP_LAST,
                    dropped,
                    report,
                    gauges,
                );
                HttpResponse::json(record.to_json())
            }
            _ => HttpResponse::not_found(),
        });
        let server = HttpServer::bind(port, handler)?;
        let addr = server.addr();
        *self.server.lock().unwrap_or_else(|p| p.into_inner()) = Some(server);
        Ok(addr)
    }

    /// Address of the running server, if any.
    pub fn addr(&self) -> Option<SocketAddr> {
        self.server
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .as_ref()
            .map(|s| s.addr())
    }

    /// Stop and drop the server (idempotent).
    pub fn stop(&self) {
        if let Some(mut server) = self.server.lock().unwrap_or_else(|p| p.into_inner()).take() {
            server.stop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hamr_trace::{http_get, parse_prometheus, Labels};
    use std::time::Duration;

    #[test]
    fn http_mode_parses_env_forms() {
        std::env::remove_var("HAMR_HTTP");
        assert_eq!(HttpMode::from_env(), HttpMode::Off);
        std::env::set_var("HAMR_HTTP", "off");
        assert_eq!(HttpMode::from_env(), HttpMode::Off);
        std::env::set_var("HAMR_HTTP", "auto");
        assert_eq!(HttpMode::from_env(), HttpMode::Auto);
        std::env::set_var("HAMR_HTTP", "9099");
        assert_eq!(HttpMode::from_env(), HttpMode::Port(9099));
        std::env::remove_var("HAMR_HTTP");
    }

    #[test]
    fn health_json_reports_incidents() {
        let mut h = Health::default();
        assert!(h.healthy());
        assert!(h.to_json().contains("\"status\":\"ok\""));
        h.incident = Some("backpressure on \"edge 1\"".into());
        assert!(!h.healthy());
        let json = h.to_json();
        assert!(json.contains("\"status\":\"incident\""), "{json}");
        assert!(json.contains("backpressure"), "{json}");
    }

    #[test]
    fn endpoint_serves_metrics_healthz_and_doctor() {
        let intro = Introspect::new();
        intro
            .registry
            .counter("demo_total", Labels::new().engine("hamr"))
            .add(7);
        let addr = intro.serve(0).expect("bind ephemeral");
        assert_eq!(intro.addr(), Some(addr));
        let t = Duration::from_secs(2);
        let (status, body) = http_get(addr, "/metrics", t).expect("GET /metrics");
        assert_eq!(status, 200);
        let samples = parse_prometheus(&body).expect("valid Prometheus text");
        assert!(
            samples
                .iter()
                .any(|s| s.name == "hamr_demo_total" && s.value == 7.0),
            "{body}"
        );
        let (status, body) = http_get(addr, "/healthz", t).expect("GET /healthz");
        assert_eq!(status, 200);
        assert!(body.contains("\"status\":\"ok\""));
        // An incident flips /healthz to 503 until cleared.
        intro
            .health
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .incident = Some("hang".into());
        let (status, _) = http_get(addr, "/healthz", t).expect("GET /healthz");
        assert_eq!(status, 503);
        // /doctor renders even with no live run attached.
        let (status, body) = http_get(addr, "/doctor", t).expect("GET /doctor");
        assert_eq!(status, 200);
        assert!(body.contains("\"dropped_events\""), "{body}");
        intro.stop();
        intro.stop();
    }
}
