//! Flowlet graph construction and validation.
//!
//! A HAMR job is a DAG of flowlets. Unlike MapReduce's fixed
//! map→reduce shape, any flowlet may connect to any other (the paper's
//! "multi-phase support"), multiple flowlets may feed one, and one may
//! feed many — which is how chains of Hadoop jobs collapse into a
//! single in-memory job.

use crate::error::GraphError;
use crate::flowlet::{Loader, MapFn, PartialReduceFn, ReduceFn, StreamSource};
use crate::resident::{CacheMode, CacheSpec};
use crate::skew::Combiner;
use std::sync::Arc;

/// Index of a flowlet within its job graph.
pub type FlowletId = usize;

/// Index of an edge within its job graph.
pub type EdgeId = usize;

/// How records are routed along an edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exchange {
    /// Partition by `stable_hash(key) % nodes` — each node owns a key
    /// slice (the shuffle).
    Hash,
    /// Deliver every record to every node.
    Broadcast,
    /// Stay on the producing node (no network).
    Local,
    /// Explicit partitioner: the key is a `Codec`-encoded `u64` node
    /// index; the record goes to node `key % nodes`. Used by
    /// locality-aware algorithms that route work back to the node
    /// where the data lives (paper §3.3, K-Means Alg. 1 step 4).
    KeyNode,
}

/// A flowlet's computation, type-erased.
pub enum FlowletKind {
    Loader(Arc<dyn Loader>),
    Stream(Arc<dyn StreamSource>),
    Map(Arc<dyn MapFn>),
    Reduce(Arc<dyn ReduceFn>),
    PartialReduce(Arc<dyn PartialReduceFn>),
}

impl FlowletKind {
    /// Sources have no inputs: loaders and stream sources.
    pub fn is_source(&self) -> bool {
        matches!(self, FlowletKind::Loader(_) | FlowletKind::Stream(_))
    }

    /// Human-readable kind name for metrics and errors.
    pub fn kind_name(&self) -> &'static str {
        match self {
            FlowletKind::Loader(_) => "loader",
            FlowletKind::Stream(_) => "stream",
            FlowletKind::Map(_) => "map",
            FlowletKind::Reduce(_) => "reduce",
            FlowletKind::PartialReduce(_) => "partial-reduce",
        }
    }
}

impl std::fmt::Debug for FlowletKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.kind_name())
    }
}

/// One flowlet in a built graph.
#[derive(Debug)]
pub struct FlowletDef {
    pub name: String,
    pub kind: FlowletKind,
    /// When true, `Emitter::output` records are collected into the
    /// job result for this flowlet.
    pub capture: bool,
    /// Outgoing edges in port order (port p == out_edges[p]).
    pub out_edges: Vec<EdgeId>,
    /// Incoming edges, unordered.
    pub in_edges: Vec<EdgeId>,
    /// Partition-residency annotation: pin (or reuse) this flowlet's
    /// post-shuffle frames across jobs in a session chain.
    pub cache: Option<CacheSpec>,
    /// Marks a frontier source — the small per-iteration delta (rank
    /// copies, centroids) that *should* ship every iteration, as
    /// opposed to the cached invariant partition. Documentation +
    /// introspection metadata; carries no runtime behavior.
    pub frontier: bool,
}

/// One edge in a built graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeDef {
    pub src: FlowletId,
    pub dst: FlowletId,
    pub exchange: Exchange,
    /// Position among `src`'s outputs (== the emitter port).
    pub src_port: usize,
}

/// Incrementally builds a [`JobGraph`].
pub struct JobBuilder {
    name: String,
    flowlets: Vec<FlowletDef>,
    edges: Vec<EdgeDef>,
    /// `(edge, combiner)` registrations from `connect_combined`.
    combiners: Vec<(EdgeId, Arc<dyn Combiner>)>,
}

impl JobBuilder {
    pub fn new(name: impl Into<String>) -> Self {
        JobBuilder {
            name: name.into(),
            flowlets: Vec::new(),
            edges: Vec::new(),
            combiners: Vec::new(),
        }
    }

    fn add(&mut self, name: impl Into<String>, kind: FlowletKind) -> FlowletId {
        let id = self.flowlets.len();
        self.flowlets.push(FlowletDef {
            name: name.into(),
            kind,
            capture: false,
            out_edges: Vec::new(),
            in_edges: Vec::new(),
            cache: None,
            frontier: false,
        });
        id
    }

    /// Add a loader (batch source) flowlet.
    pub fn add_loader(&mut self, name: impl Into<String>, l: impl Loader + 'static) -> FlowletId {
        self.add(name, FlowletKind::Loader(Arc::new(l)))
    }

    /// Add a streaming source flowlet.
    pub fn add_stream(
        &mut self,
        name: impl Into<String>,
        s: impl StreamSource + 'static,
    ) -> FlowletId {
        self.add(name, FlowletKind::Stream(Arc::new(s)))
    }

    /// Add a map flowlet.
    pub fn add_map(&mut self, name: impl Into<String>, m: impl MapFn + 'static) -> FlowletId {
        self.add(name, FlowletKind::Map(Arc::new(m)))
    }

    /// Add a full reduce flowlet.
    pub fn add_reduce(&mut self, name: impl Into<String>, r: impl ReduceFn + 'static) -> FlowletId {
        self.add(name, FlowletKind::Reduce(Arc::new(r)))
    }

    /// Add a partial-reduce flowlet.
    pub fn add_partial_reduce(
        &mut self,
        name: impl Into<String>,
        r: impl PartialReduceFn + 'static,
    ) -> FlowletId {
        self.add(name, FlowletKind::PartialReduce(Arc::new(r)))
    }

    /// Connect `src` to `dst`. The returned value is `src`'s output
    /// port for this connection (its n-th `connect` as a source).
    pub fn connect(&mut self, src: FlowletId, dst: FlowletId, exchange: Exchange) -> usize {
        let edge_id = self.edges.len();
        let src_port = self
            .flowlets
            .get(src)
            .map(|f| f.out_edges.len())
            .unwrap_or(0);
        self.edges.push(EdgeDef {
            src,
            dst,
            exchange,
            src_port,
        });
        if let Some(f) = self.flowlets.get_mut(src) {
            f.out_edges.push(edge_id);
        }
        if let Some(f) = self.flowlets.get_mut(dst) {
            f.in_edges.push(edge_id);
        }
        src_port
    }

    /// [`connect`](Self::connect), plus an associative [`Combiner`] for
    /// the edge's values, enabling the skew-mitigation mechanisms on it
    /// (in-node combining, hot-key splitting, shard rebalancing — see
    /// `crate::skew`). The combiner must satisfy the Hadoop combiner
    /// contract: its output is valid reducer input, and merging in any
    /// grouping/order yields the same final result. `build` rejects
    /// combiners on edges that are not `Hash` exchanges into a
    /// `Reduce`/`PartialReduce`.
    pub fn connect_combined(
        &mut self,
        src: FlowletId,
        dst: FlowletId,
        exchange: Exchange,
        combiner: Arc<dyn Combiner>,
    ) -> usize {
        let port = self.connect(src, dst, exchange);
        self.combiners.push((self.edges.len() - 1, combiner));
        port
    }

    /// Pin `flowlet`'s post-shuffle frames in the session's
    /// [`ResidentStore`](crate::ResidentStore) under `tag` after this
    /// job completes (fill-only: this job still runs the flowlet and
    /// ships normally). `fingerprint` keys invalidation — derive it
    /// from whatever identifies the input; a later `resident(tag)`
    /// with a different fingerprint bypasses the cache.
    pub fn cache_as(&mut self, flowlet: FlowletId, tag: impl Into<String>, fingerprint: u64) {
        if let Some(f) = self.flowlets.get_mut(flowlet) {
            f.cache = Some(CacheSpec {
                tag: tag.into(),
                fingerprint,
                mode: CacheMode::Fill,
            });
        } else {
            self.mark_unknown(flowlet);
        }
    }

    /// Declare `flowlet` (a loader) partition-resident: when the
    /// session's store holds `tag` with a matching `fingerprint` and
    /// topology, the loader does not run at all — its downstream
    /// frames are served locally from the cache (no re-encode, no
    /// re-hash, no fabric ship). On a miss the loader runs normally
    /// and fills the cache for the next job in the chain.
    pub fn resident(&mut self, flowlet: FlowletId, tag: impl Into<String>, fingerprint: u64) {
        if let Some(f) = self.flowlets.get_mut(flowlet) {
            f.cache = Some(CacheSpec {
                tag: tag.into(),
                fingerprint,
                mode: CacheMode::Serve,
            });
        } else {
            self.mark_unknown(flowlet);
        }
    }

    /// Mark `flowlet` as a frontier source: the small per-iteration
    /// delta that legitimately ships every iteration (rank copies,
    /// centroids). Metadata for introspection and DOT export.
    pub fn frontier(&mut self, flowlet: FlowletId) {
        if let Some(f) = self.flowlets.get_mut(flowlet) {
            f.frontier = true;
        } else {
            self.mark_unknown(flowlet);
        }
    }

    /// Remember a bad flowlet id so build() reports it.
    fn mark_unknown(&mut self, flowlet: FlowletId) {
        self.edges.push(EdgeDef {
            src: flowlet,
            dst: flowlet,
            exchange: Exchange::Local,
            src_port: usize::MAX,
        });
    }

    /// Collect `Emitter::output` records of `flowlet` into the job result.
    pub fn capture_output(&mut self, flowlet: FlowletId) {
        if let Some(f) = self.flowlets.get_mut(flowlet) {
            f.capture = true;
        } else {
            // Remember the bad id so build() reports it.
            self.edges.push(EdgeDef {
                src: flowlet,
                dst: flowlet,
                exchange: Exchange::Local,
                src_port: usize::MAX,
            });
        }
    }

    /// Validate and freeze the graph.
    pub fn build(self) -> Result<JobGraph, GraphError> {
        let JobBuilder {
            name,
            flowlets,
            edges,
            combiners,
        } = self;
        if flowlets.is_empty() {
            return Err(GraphError::Empty);
        }
        // Combiners only make sense on a shuffle into an aggregation:
        // anywhere else, pre-merging values would change the result.
        let mut edge_combiners: Vec<Option<Arc<dyn Combiner>>> = vec![None; edges.len()];
        for (e, c) in combiners {
            let def = &edges[e];
            let aggregating = def.dst < flowlets.len()
                && matches!(
                    flowlets[def.dst].kind,
                    FlowletKind::Reduce(_) | FlowletKind::PartialReduce(_)
                );
            if def.exchange != Exchange::Hash || !aggregating {
                return Err(GraphError::InvalidCombinerEdge {
                    src: def.src,
                    dst: def.dst,
                });
            }
            edge_combiners[e] = Some(c);
        }
        // Ids in range (including the capture_output sentinel).
        for e in &edges {
            if e.src_port == usize::MAX {
                return Err(GraphError::UnknownOutput(e.src));
            }
            if e.src >= flowlets.len() || e.dst >= flowlets.len() {
                return Err(GraphError::UnknownFlowlet(e.src.max(e.dst)));
            }
        }
        // Duplicate edges between the same ordered pair.
        let mut seen = std::collections::HashSet::new();
        for e in &edges {
            if !seen.insert((e.src, e.dst)) {
                return Err(GraphError::DuplicateEdge {
                    src: e.src,
                    dst: e.dst,
                });
            }
        }
        // Sources have no inputs; non-sources have at least one.
        for (id, f) in flowlets.iter().enumerate() {
            if f.kind.is_source() {
                if !f.in_edges.is_empty() {
                    return Err(GraphError::LoaderWithInput(id));
                }
            } else if f.in_edges.is_empty() {
                return Err(GraphError::Unreachable(id));
            }
        }
        // Residency annotations: tags must be non-empty, streams can
        // never be pinned (no completion), and serving requires a
        // loader (the serve path replaces loader splits).
        for (id, f) in flowlets.iter().enumerate() {
            let Some(spec) = &f.cache else { continue };
            if spec.tag.is_empty() {
                return Err(GraphError::InvalidCacheAnnotation {
                    flowlet: id,
                    reason: "cache tag is empty",
                });
            }
            if matches!(f.kind, FlowletKind::Stream(_)) {
                return Err(GraphError::InvalidCacheAnnotation {
                    flowlet: id,
                    reason: "stream sources cannot be cached",
                });
            }
            if spec.mode == CacheMode::Serve && !matches!(f.kind, FlowletKind::Loader(_)) {
                return Err(GraphError::InvalidCacheAnnotation {
                    flowlet: id,
                    reason: "resident() requires a loader source",
                });
            }
        }
        // Kahn topological sort (cycle check).
        let mut indegree: Vec<usize> = flowlets.iter().map(|f| f.in_edges.len()).collect();
        let mut queue: Vec<FlowletId> = indegree
            .iter()
            .enumerate()
            .filter(|(_, &d)| d == 0)
            .map(|(i, _)| i)
            .collect();
        let mut topo = Vec::with_capacity(flowlets.len());
        while let Some(id) = queue.pop() {
            topo.push(id);
            for &e in &flowlets[id].out_edges {
                let dst = edges[e].dst;
                indegree[dst] -= 1;
                if indegree[dst] == 0 {
                    queue.push(dst);
                }
            }
        }
        if topo.len() != flowlets.len() {
            return Err(GraphError::Cycle);
        }
        // Streaming jobs cannot contain a full Reduce downstream of a
        // stream source (it would wait forever).
        let has_stream = flowlets
            .iter()
            .any(|f| matches!(f.kind, FlowletKind::Stream(_)));
        if has_stream {
            let mut reach_stream = vec![false; flowlets.len()];
            for (id, f) in flowlets.iter().enumerate() {
                if matches!(f.kind, FlowletKind::Stream(_)) {
                    reach_stream[id] = true;
                }
            }
            for &id in &topo {
                if reach_stream[id] {
                    for &e in &flowlets[id].out_edges {
                        reach_stream[edges[e].dst] = true;
                    }
                }
            }
            for (id, f) in flowlets.iter().enumerate() {
                if reach_stream[id] && matches!(f.kind, FlowletKind::Reduce(_)) {
                    return Err(GraphError::ReduceOnStream(id));
                }
            }
        }
        Ok(JobGraph {
            name,
            flowlets,
            edges,
            edge_combiners,
            topo,
            has_stream,
        })
    }
}

/// A validated, immutable flowlet DAG ready to run.
#[derive(Debug)]
pub struct JobGraph {
    pub name: String,
    pub flowlets: Vec<FlowletDef>,
    pub edges: Vec<EdgeDef>,
    /// Per-edge combiner registered via
    /// [`JobBuilder::connect_combined`], indexed by edge id.
    pub edge_combiners: Vec<Option<Arc<dyn Combiner>>>,
    /// Topological order of flowlet ids.
    pub topo: Vec<FlowletId>,
    /// True when the graph contains a stream source (streaming job).
    pub has_stream: bool,
}

impl JobGraph {
    pub fn flowlet_count(&self) -> usize {
        self.flowlets.len()
    }

    /// Render the DAG in Graphviz DOT format (for debugging and docs).
    ///
    /// Nodes are labelled `name\n(kind)`; edges carry their exchange.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}\" {{", self.name.replace('"', "'"));
        let _ = writeln!(out, "  rankdir=LR;");
        for (id, f) in self.flowlets.iter().enumerate() {
            let shape = match f.kind {
                FlowletKind::Loader(_) | FlowletKind::Stream(_) => "invhouse",
                FlowletKind::Reduce(_) => "box",
                FlowletKind::PartialReduce(_) => "box3d",
                FlowletKind::Map(_) => "ellipse",
            };
            let capture = if f.capture { "\\n[captured]" } else { "" };
            let cache = match &f.cache {
                Some(spec) if spec.mode == CacheMode::Serve => {
                    format!("\\n[resident {}]", spec.tag.replace('"', "'"))
                }
                Some(spec) => format!("\\n[cache_as {}]", spec.tag.replace('"', "'")),
                None => String::new(),
            };
            let frontier = if f.frontier { "\\n[frontier]" } else { "" };
            let _ = writeln!(
                out,
                "  f{id} [label=\"{}\\n({}){}{}{}\" shape={shape}];",
                f.name.replace('"', "'"),
                f.kind.kind_name(),
                capture,
                cache,
                frontier
            );
        }
        for e in &self.edges {
            let style = match e.exchange {
                Exchange::Hash => "label=\"hash\"",
                Exchange::Broadcast => "label=\"broadcast\" style=dashed",
                Exchange::Local => "label=\"local\" style=dotted",
                Exchange::KeyNode => "label=\"key-node\"",
            };
            let _ = writeln!(out, "  f{} -> f{} [{style}];", e.src, e.dst);
        }
        let _ = writeln!(out, "}}");
        out
    }

    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// (edge id, exchange) pairs for a flowlet's outputs, port order.
    pub fn out_ports(&self, flowlet: FlowletId) -> Vec<(EdgeId, Exchange)> {
        self.flowlets[flowlet]
            .out_edges
            .iter()
            .map(|&e| (e, self.edges[e].exchange))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flowlet::{Emitter, TaskContext};
    use bytes::Bytes;

    struct NullLoader;
    impl Loader for NullLoader {
        fn split_count(&self, _ctx: &TaskContext) -> usize {
            0
        }
        fn load(&self, _ctx: &TaskContext, _index: usize, _out: &mut Emitter) {}
    }

    struct IdMap;
    impl MapFn for IdMap {
        fn map(&self, _ctx: &TaskContext, _k: &[u8], _v: &[u8], _out: &mut Emitter) {}
    }

    struct NullReduce;
    impl ReduceFn for NullReduce {
        fn reduce(
            &self,
            _ctx: &TaskContext,
            _key: &[u8],
            _values: &mut dyn Iterator<Item = Bytes>,
            _out: &mut Emitter,
        ) {
        }
    }

    struct NullStream;
    impl StreamSource for NullStream {
        fn epoch(&self, _ctx: &TaskContext, _epoch: u64, _out: &mut Emitter) -> bool {
            false
        }
    }

    fn two_stage() -> JobBuilder {
        let mut b = JobBuilder::new("t");
        let l = b.add_loader("l", NullLoader);
        let m = b.add_map("m", IdMap);
        b.connect(l, m, Exchange::Hash);
        b
    }

    #[test]
    fn valid_graph_builds() {
        let g = two_stage().build().unwrap();
        assert_eq!(g.flowlet_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.topo, vec![0, 1]);
        assert!(!g.has_stream);
        assert_eq!(g.out_ports(0), vec![(0, Exchange::Hash)]);
        assert!(g.out_ports(1).is_empty());
    }

    #[test]
    fn empty_graph_rejected() {
        assert_eq!(JobBuilder::new("e").build().unwrap_err(), GraphError::Empty);
    }

    #[test]
    fn cycle_rejected() {
        let mut b = JobBuilder::new("c");
        let l = b.add_loader("l", NullLoader);
        let m1 = b.add_map("m1", IdMap);
        let m2 = b.add_map("m2", IdMap);
        b.connect(l, m1, Exchange::Local);
        b.connect(m1, m2, Exchange::Local);
        b.connect(m2, m1, Exchange::Local);
        assert_eq!(b.build().unwrap_err(), GraphError::Cycle);
    }

    #[test]
    fn orphan_map_rejected() {
        let mut b = JobBuilder::new("o");
        b.add_loader("l", NullLoader);
        b.add_map("m", IdMap);
        assert_eq!(b.build().unwrap_err(), GraphError::Unreachable(1));
    }

    #[test]
    fn loader_with_input_rejected() {
        let mut b = JobBuilder::new("li");
        let l1 = b.add_loader("l1", NullLoader);
        let l2 = b.add_loader("l2", NullLoader);
        b.connect(l1, l2, Exchange::Local);
        assert_eq!(b.build().unwrap_err(), GraphError::LoaderWithInput(l2));
    }

    #[test]
    fn duplicate_edge_rejected() {
        let mut b = two_stage();
        b.connect(0, 1, Exchange::Local);
        assert_eq!(
            b.build().unwrap_err(),
            GraphError::DuplicateEdge { src: 0, dst: 1 }
        );
    }

    #[test]
    fn unknown_flowlet_in_edge_rejected() {
        let mut b = JobBuilder::new("u");
        let l = b.add_loader("l", NullLoader);
        b.connect(l, 99, Exchange::Local);
        assert_eq!(b.build().unwrap_err(), GraphError::UnknownFlowlet(99));
    }

    #[test]
    fn reduce_downstream_of_stream_rejected() {
        let mut b = JobBuilder::new("s");
        let s = b.add_stream("s", NullStream);
        let m = b.add_map("m", IdMap);
        let r = b.add_reduce("r", NullReduce);
        b.connect(s, m, Exchange::Local);
        b.connect(m, r, Exchange::Hash);
        assert_eq!(b.build().unwrap_err(), GraphError::ReduceOnStream(r));
    }

    #[test]
    fn reduce_beside_stream_allowed() {
        // A reduce fed only by a batch loader coexists with a stream
        // elsewhere in the graph.
        let mut b = JobBuilder::new("s2");
        let s = b.add_stream("s", NullStream);
        let m = b.add_map("m", IdMap);
        let l = b.add_loader("l", NullLoader);
        let r = b.add_reduce("r", NullReduce);
        b.connect(s, m, Exchange::Local);
        b.connect(l, r, Exchange::Hash);
        let g = b.build().unwrap();
        assert!(g.has_stream);
    }

    #[test]
    fn capture_unknown_output_rejected() {
        let mut b = two_stage();
        b.capture_output(42);
        assert_eq!(b.build().unwrap_err(), GraphError::UnknownOutput(42));
    }

    #[test]
    fn ports_assigned_in_connect_order() {
        let mut b = JobBuilder::new("p");
        let l = b.add_loader("l", NullLoader);
        let m1 = b.add_map("m1", IdMap);
        let m2 = b.add_map("m2", IdMap);
        let p0 = b.connect(l, m1, Exchange::Local);
        let p1 = b.connect(l, m2, Exchange::Broadcast);
        assert_eq!((p0, p1), (0, 1));
        let g = b.build().unwrap();
        assert_eq!(
            g.out_ports(l),
            vec![(0, Exchange::Local), (1, Exchange::Broadcast)]
        );
    }

    #[test]
    fn dot_export_mentions_every_flowlet_and_edge() {
        let mut b = JobBuilder::new("viz");
        let l = b.add_loader("src", NullLoader);
        let m = b.add_map("xform", IdMap);
        let r = b.add_reduce("agg", NullReduce);
        b.connect(l, m, Exchange::Local);
        b.connect(m, r, Exchange::Hash);
        b.capture_output(r);
        let dot = b.build().unwrap().to_dot();
        assert!(dot.starts_with("digraph"));
        for needle in [
            "src",
            "xform",
            "agg",
            "f0 -> f1",
            "f1 -> f2",
            "hash",
            "local",
            "[captured]",
        ] {
            assert!(dot.contains(needle), "missing {needle} in:\n{dot}");
        }
    }

    struct AddCombiner;
    impl Combiner for AddCombiner {
        fn combine(&self, _key: &[u8], a: &[u8], _b: &[u8], out: &mut Vec<u8>) {
            out.extend_from_slice(a);
        }
    }

    #[test]
    fn combiner_on_hash_reduce_accepted() {
        let mut b = JobBuilder::new("cb");
        let l = b.add_loader("l", NullLoader);
        let m = b.add_map("m", IdMap);
        let r = b.add_reduce("r", NullReduce);
        b.connect(l, m, Exchange::Local);
        let port = b.connect_combined(m, r, Exchange::Hash, Arc::new(AddCombiner));
        assert_eq!(port, 0);
        let g = b.build().unwrap();
        assert!(g.edge_combiners[0].is_none());
        assert!(g.edge_combiners[1].is_some());
    }

    #[test]
    fn combiner_on_local_edge_rejected() {
        let mut b = JobBuilder::new("cb-local");
        let l = b.add_loader("l", NullLoader);
        let r = b.add_reduce("r", NullReduce);
        b.connect_combined(l, r, Exchange::Local, Arc::new(AddCombiner));
        assert_eq!(
            b.build().unwrap_err(),
            GraphError::InvalidCombinerEdge { src: l, dst: r }
        );
    }

    #[test]
    fn combiner_into_map_rejected() {
        let mut b = JobBuilder::new("cb-map");
        let l = b.add_loader("l", NullLoader);
        let m = b.add_map("m", IdMap);
        b.connect_combined(l, m, Exchange::Hash, Arc::new(AddCombiner));
        assert_eq!(
            b.build().unwrap_err(),
            GraphError::InvalidCombinerEdge { src: l, dst: m }
        );
    }

    #[test]
    fn cache_annotations_build_and_render() {
        let mut b = two_stage();
        b.resident(0, "t/adj", 42);
        b.frontier(1);
        let g = b.build().unwrap();
        let spec = g.flowlets[0].cache.as_ref().unwrap();
        assert_eq!(spec.tag, "t/adj");
        assert_eq!(spec.fingerprint, 42);
        assert_eq!(spec.mode, crate::resident::CacheMode::Serve);
        assert!(g.flowlets[1].frontier);
        let dot = g.to_dot();
        assert!(dot.contains("[resident t/adj]"), "{dot}");
        assert!(dot.contains("[frontier]"), "{dot}");
        let mut b = two_stage();
        b.cache_as(0, "t/adj", 1);
        assert!(b.build().unwrap().to_dot().contains("[cache_as t/adj]"));
    }

    #[test]
    fn resident_on_non_loader_rejected() {
        let mut b = two_stage();
        b.resident(1, "t", 0);
        assert_eq!(
            b.build().unwrap_err(),
            GraphError::InvalidCacheAnnotation {
                flowlet: 1,
                reason: "resident() requires a loader source",
            }
        );
        // Fill-only annotations are fine on a map.
        let mut b = two_stage();
        b.cache_as(1, "t", 0);
        assert!(b.build().is_ok());
    }

    #[test]
    fn empty_cache_tag_rejected() {
        let mut b = two_stage();
        b.resident(0, "", 0);
        assert_eq!(
            b.build().unwrap_err(),
            GraphError::InvalidCacheAnnotation {
                flowlet: 0,
                reason: "cache tag is empty",
            }
        );
    }

    #[test]
    fn cached_stream_rejected() {
        let mut b = JobBuilder::new("cs");
        let s = b.add_stream("s", NullStream);
        let m = b.add_map("m", IdMap);
        b.connect(s, m, Exchange::Local);
        b.cache_as(s, "t", 0);
        assert_eq!(
            b.build().unwrap_err(),
            GraphError::InvalidCacheAnnotation {
                flowlet: 0,
                reason: "stream sources cannot be cached",
            }
        );
    }

    #[test]
    fn cache_on_unknown_flowlet_rejected() {
        let mut b = two_stage();
        b.resident(99, "t", 0);
        assert_eq!(b.build().unwrap_err(), GraphError::UnknownOutput(99));
    }

    #[test]
    fn diamond_topology_sorts() {
        let mut b = JobBuilder::new("d");
        let l = b.add_loader("l", NullLoader);
        let m1 = b.add_map("m1", IdMap);
        let m2 = b.add_map("m2", IdMap);
        let r = b.add_reduce("r", NullReduce);
        b.connect(l, m1, Exchange::Local);
        b.connect(l, m2, Exchange::Local);
        b.connect(m1, r, Exchange::Hash);
        b.connect(m2, r, Exchange::Hash);
        let g = b.build().unwrap();
        let pos = |id: FlowletId| g.topo.iter().position(|&x| x == id).unwrap();
        assert!(pos(l) < pos(m1));
        assert!(pos(l) < pos(m2));
        assert!(pos(m1) < pos(r));
        assert!(pos(m2) < pos(r));
    }
}
