//! Error types for graph construction and job execution.

use crate::graph::FlowletId;
use std::fmt;

/// Errors detected while validating a flowlet graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The graph has no flowlets.
    Empty,
    /// The edge set contains a cycle (flowlet graphs must be DAGs).
    Cycle,
    /// A non-loader flowlet has no incoming edge, so it could never fire.
    Unreachable(FlowletId),
    /// A loader has an incoming edge; loaders are pure sources.
    LoaderWithInput(FlowletId),
    /// An edge references a flowlet id that does not exist.
    UnknownFlowlet(FlowletId),
    /// Duplicate edge between the same pair of flowlets.
    DuplicateEdge { src: FlowletId, dst: FlowletId },
    /// A full `Reduce` is downstream of a stream source; reduce needs
    /// total input completion, which a stream never provides.
    ReduceOnStream(FlowletId),
    /// `capture_output` named a flowlet that does not exist.
    UnknownOutput(FlowletId),
    /// `connect_combined` was used on an edge that is not a `Hash`
    /// exchange into a `Reduce`/`PartialReduce` — pre-merging values
    /// anywhere else would change the job's result.
    InvalidCombinerEdge { src: FlowletId, dst: FlowletId },
    /// A residency annotation that cannot work: `resident` on a
    /// non-loader (serving replaces loader splits), an empty cache
    /// tag, or a cache annotation on a stream source (streams never
    /// complete, so their frames can never be pinned whole).
    InvalidCacheAnnotation {
        flowlet: FlowletId,
        reason: &'static str,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Empty => write!(f, "flowlet graph is empty"),
            GraphError::Cycle => write!(f, "flowlet graph contains a cycle"),
            GraphError::Unreachable(id) => {
                write!(f, "flowlet {id} has no input edge and is not a loader")
            }
            GraphError::LoaderWithInput(id) => write!(f, "loader flowlet {id} has an input edge"),
            GraphError::UnknownFlowlet(id) => write!(f, "edge references unknown flowlet {id}"),
            GraphError::DuplicateEdge { src, dst } => {
                write!(f, "duplicate edge {src} -> {dst}")
            }
            GraphError::ReduceOnStream(id) => write!(
                f,
                "reduce flowlet {id} is downstream of a stream source; use a partial reduce"
            ),
            GraphError::UnknownOutput(id) => {
                write!(f, "capture_output names unknown flowlet {id}")
            }
            GraphError::InvalidCombinerEdge { src, dst } => write!(
                f,
                "combiner on edge {src} -> {dst}: combiners require a Hash \
                 exchange into a reduce or partial-reduce flowlet"
            ),
            GraphError::InvalidCacheAnnotation { flowlet, reason } => {
                write!(f, "cache annotation on flowlet {flowlet}: {reason}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// Errors detected while validating a [`crate::ClusterConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `nodes == 0`: a cluster needs at least one node.
    ZeroNodes,
    /// `threads_per_node == 0`: every node needs at least one worker.
    ZeroThreads,
    /// `runtime.bin_capacity == 0`: bins could never fill or ship.
    ZeroBinCapacity,
    /// `runtime.out_window_bins == 0`: flow control would deadlock
    /// every producer immediately.
    ZeroWindow,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroNodes => write!(f, "cluster config has zero nodes"),
            ConfigError::ZeroThreads => {
                write!(f, "cluster config has zero worker threads per node")
            }
            ConfigError::ZeroBinCapacity => write!(f, "runtime config has zero bin capacity"),
            ConfigError::ZeroWindow => {
                write!(f, "runtime config has a zero flow-control window")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Errors surfaced while running a job.
#[derive(Debug)]
pub enum RunError {
    /// The graph failed validation (should have been caught at build).
    Graph(GraphError),
    /// A node runtime panicked; the message carries the panic payload.
    NodePanic { node: usize, message: String },
    /// The network fabric failed.
    Net(hamr_simnet::NetError),
    /// A substrate disk failed.
    Disk(hamr_simdisk::DiskError),
    /// The DFS failed (loaders reading splits, sinks writing output).
    Dfs(hamr_dfs::DfsError),
    /// The watchdog classified the run as unhealthy and aborted it
    /// instead of hanging forever. `detail` names the stuck edge/node;
    /// the matching flight-recorder dump carries the full post-mortem.
    Watchdog {
        class: hamr_trace::WatchdogClass,
        epoch: u64,
        detail: String,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Graph(e) => write!(f, "invalid graph: {e}"),
            RunError::NodePanic { node, message } => {
                write!(f, "node {node} runtime panicked: {message}")
            }
            RunError::Net(e) => write!(f, "network error: {e}"),
            RunError::Disk(e) => write!(f, "disk error: {e}"),
            RunError::Dfs(e) => write!(f, "dfs error: {e}"),
            RunError::Watchdog {
                class,
                epoch,
                detail,
            } => write!(
                f,
                "watchdog aborted the job at epoch {epoch} ({}): {detail}",
                class.name()
            ),
        }
    }
}

impl std::error::Error for RunError {}

impl From<GraphError> for RunError {
    fn from(e: GraphError) -> Self {
        RunError::Graph(e)
    }
}

impl From<hamr_simnet::NetError> for RunError {
    fn from(e: hamr_simnet::NetError) -> Self {
        RunError::Net(e)
    }
}

impl From<hamr_simdisk::DiskError> for RunError {
    fn from(e: hamr_simdisk::DiskError) -> Self {
        RunError::Disk(e)
    }
}

impl From<hamr_dfs::DfsError> for RunError {
    fn from(e: hamr_dfs::DfsError) -> Self {
        RunError::Dfs(e)
    }
}
