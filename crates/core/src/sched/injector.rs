//! The node-global injector queue.
//!
//! The runtime thread's ingress pump admits work here; workers whose
//! local deque is dry pull a small batch out (front, FIFO) and keep the
//! surplus in their own deque. Batching amortizes the lock, while the
//! small cap keeps one worker from hoarding a fire burst that the rest
//! of the pool could have shared.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Max tasks one injector pull moves into a worker's deque.
pub(crate) const INJECTOR_BATCH: usize = 4;

pub(crate) struct Injector<T> {
    q: Mutex<VecDeque<T>>,
    /// Cached length so idle workers can probe without locking.
    len: AtomicUsize,
}

impl<T> Injector<T> {
    pub(crate) fn new() -> Self {
        Injector {
            q: Mutex::new(VecDeque::new()),
            len: AtomicUsize::new(0),
        }
    }

    pub(crate) fn push(&self, t: T) {
        let mut q = self.q.lock().unwrap_or_else(|p| p.into_inner());
        q.push_back(t);
        self.len.store(q.len(), Ordering::Release);
    }

    pub(crate) fn push_batch(&self, ts: impl IntoIterator<Item = T>) {
        let mut q = self.q.lock().unwrap_or_else(|p| p.into_inner());
        q.extend(ts);
        self.len.store(q.len(), Ordering::Release);
    }

    /// Take up to [`INJECTOR_BATCH`] tasks; the first is returned for
    /// immediate execution, the rest land in `extra`.
    pub(crate) fn pop_batch(&self, extra: &mut Vec<T>) -> Option<T> {
        if self.len.load(Ordering::Acquire) == 0 {
            return None;
        }
        let mut q = self.q.lock().unwrap_or_else(|p| p.into_inner());
        let first = q.pop_front();
        for _ in 1..INJECTOR_BATCH {
            if let Some(t) = q.pop_front() {
                extra.push(t);
            } else {
                break;
            }
        }
        self.len.store(q.len(), Ordering::Release);
        first
    }

    pub(crate) fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_batched_pop() {
        let inj = Injector::new();
        inj.push_batch(0..10);
        assert_eq!(inj.len(), 10);
        let mut extra = Vec::new();
        let first = inj.pop_batch(&mut extra);
        assert_eq!(first, Some(0));
        assert_eq!(extra, vec![1, 2, 3]);
        assert_eq!(inj.len(), 10 - INJECTOR_BATCH);
    }

    #[test]
    fn empty_pop_is_lock_free_none() {
        let inj: Injector<u32> = Injector::new();
        let mut extra = Vec::new();
        assert_eq!(inj.pop_batch(&mut extra), None);
        assert!(extra.is_empty());
    }
}
