//! Per-worker parker: a token-passing condvar wrapper.
//!
//! A worker that finds the whole node drained parks here; task
//! submission deposits a token and wakes it. Tokens are capped at one,
//! so spurious unparks cannot accumulate into a busy-spin. Parks are
//! always bounded by a timeout: even if a wake-up is lost to a race
//! (work appeared in a peer's deque without an unpark reaching this
//! worker), the worker re-checks the steal targets within
//! [`super::PARK_TIMEOUT`] — this is what bounds the starvation window
//! the scheduler tests assert on.

use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

pub(crate) struct Parker {
    token: Mutex<bool>,
    cv: Condvar,
}

impl Parker {
    pub(crate) fn new() -> Self {
        Parker {
            token: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    /// Park until a token arrives or `timeout` elapses. Returns the
    /// time actually spent parked (zero if a token was already
    /// waiting).
    pub(crate) fn park(&self, timeout: Duration) -> Duration {
        let start = Instant::now();
        let mut token = self.token.lock().unwrap_or_else(|p| p.into_inner());
        if *token {
            *token = false;
            return Duration::ZERO;
        }
        let deadline = start + timeout;
        loop {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (next, _) = self
                .cv
                .wait_timeout(token, deadline - now)
                .unwrap_or_else(|p| p.into_inner());
            token = next;
            if *token {
                *token = false;
                break;
            }
        }
        start.elapsed()
    }

    /// Deposit a token (capped at one) and wake the parked worker.
    pub(crate) fn unpark(&self) {
        let mut token = self.token.lock().unwrap_or_else(|p| p.into_inner());
        *token = true;
        drop(token);
        self.cv.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn pre_deposited_token_skips_the_park() {
        let p = Parker::new();
        p.unpark();
        let parked = p.park(Duration::from_secs(5));
        assert!(parked < Duration::from_millis(100), "parked {parked:?}");
    }

    #[test]
    fn tokens_do_not_accumulate() {
        let p = Parker::new();
        p.unpark();
        p.unpark();
        p.unpark();
        assert!(p.park(Duration::from_secs(1)) < Duration::from_millis(100));
        // Only one token was banked: the second park must wait out its
        // (short) timeout.
        let parked = p.park(Duration::from_millis(20));
        assert!(parked >= Duration::from_millis(15), "parked {parked:?}");
    }

    #[test]
    fn unpark_wakes_a_parked_thread() {
        let p = Arc::new(Parker::new());
        let p2 = Arc::clone(&p);
        let h = std::thread::spawn(move || p2.park(Duration::from_secs(10)));
        std::thread::sleep(Duration::from_millis(30));
        p.unpark();
        let parked = h.join().unwrap();
        assert!(parked < Duration::from_secs(5), "parked {parked:?}");
    }

    #[test]
    fn park_times_out_without_token() {
        let p = Parker::new();
        let parked = p.park(Duration::from_millis(10));
        assert!(parked >= Duration::from_millis(8), "parked {parked:?}");
    }
}
