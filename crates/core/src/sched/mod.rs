//! Decentralized work-stealing task pool.
//!
//! This module replaces the old "one runtime thread owns every
//! scheduling decision" control plane. Each worker owns a
//! [`WorkerDeque`] (owner pops LIFO for cache warmth, thieves steal
//! FIFO); the runtime thread only *injects* newly-admitted tasks into a
//! node-global [`Injector`], and a worker that finds both its deque and
//! the injector dry sweeps its peers' deques before parking.
//!
//! Fetch policy, in order:
//!   1. own deque (back, LIFO)
//!   2. injector (front, small batch — surplus lands in the own deque)
//!   3. steal sweep over peers starting at a rotating offset, taking up
//!      to half the victim's deque (front, FIFO)
//!   4. park, bounded by [`PARK_TIMEOUT`]
//!
//! The bounded park is the liveness backstop: even if an unpark is lost
//! to a race, a parked worker re-runs the full fetch policy within one
//! timeout, so no worker can starve while a peer's deque holds ready
//! tasks for longer than that window. The scheduler tests assert this
//! bound directly.

mod deque;
mod injector;
mod parker;

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

use deque::WorkerDeque;
use injector::Injector;
use parker::Parker;

/// Upper bound on a single park. Keeps the starvation window bounded
/// without the complexity of a fully race-free wake protocol.
pub(crate) const PARK_TIMEOUT: Duration = Duration::from_millis(1);

/// Where a fetched task came from; used for tracing steals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Source {
    /// The worker's own deque.
    Local,
    /// The node-global injector.
    Injector,
    /// Stolen from the named victim's deque.
    Stolen { victim: usize },
}

#[derive(Default)]
struct WorkerStats {
    /// Steal operations that fetched at least one task.
    steals: AtomicU64,
    /// Total tasks moved by this worker's steals.
    stolen_tasks: AtomicU64,
    /// Total time spent parked, in microseconds.
    park_us: AtomicU64,
    /// Tasks fetched (and hence executed) by this worker.
    tasks: AtomicU64,
}

/// Work-stealing pool over `workers` deques plus one injector.
///
/// Generic over the task type so the scheduler can be unit-tested
/// without dragging in the whole node runtime.
pub(crate) struct Pool<T: Send> {
    injector: Injector<T>,
    deques: Vec<WorkerDeque<T>>,
    parkers: Vec<Parker>,
    stats: Vec<WorkerStats>,
    shutdown: AtomicBool,
    /// Round-robin cursor for picking which parked worker to wake.
    wake_rr: AtomicUsize,
}

impl<T: Send> Pool<T> {
    pub(crate) fn new(workers: usize) -> Self {
        assert!(workers > 0, "pool needs at least one worker");
        Pool {
            injector: Injector::new(),
            deques: (0..workers).map(|_| WorkerDeque::new()).collect(),
            parkers: (0..workers).map(|_| Parker::new()).collect(),
            stats: (0..workers).map(|_| WorkerStats::default()).collect(),
            shutdown: AtomicBool::new(false),
            wake_rr: AtomicUsize::new(0),
        }
    }

    pub(crate) fn workers(&self) -> usize {
        self.deques.len()
    }

    /// Submit one task from outside the pool (the runtime thread's
    /// ingress pump). Wakes one worker.
    pub(crate) fn submit(&self, t: T) {
        self.injector.push(t);
        self.unpark_one();
    }

    /// Submit a batch (e.g. a reduce fire's sub-shards). Wakes all
    /// workers so the burst spreads immediately.
    pub(crate) fn submit_batch(&self, ts: impl IntoIterator<Item = T>) {
        self.injector.push_batch(ts);
        self.unpark_all();
    }

    /// Push a task straight onto a specific worker's deque without a
    /// wake-up. Test seam: lets the starvation test preload a victim.
    #[cfg(test)]
    pub(crate) fn submit_local(&self, worker: usize, t: T) {
        self.deques[worker].push(t);
    }

    /// Push a task onto the calling worker's own deque (it just made
    /// the task ready itself, so it is already awake).
    #[allow(dead_code)]
    pub(crate) fn push_local(&self, worker: usize, t: T) {
        self.deques[worker].push(t);
    }

    /// Run the fetch policy for `worker`. Returns the task and where it
    /// came from, or `None` if the whole node is drained.
    pub(crate) fn try_fetch(&self, worker: usize) -> Option<(T, Source)> {
        let stats = &self.stats[worker];
        // 1. Own deque, newest first.
        if let Some(t) = self.deques[worker].pop() {
            stats.tasks.fetch_add(1, Ordering::Relaxed);
            return Some((t, Source::Local));
        }
        // 2. Injector, oldest first; surplus goes into the own deque.
        let mut extra = Vec::new();
        if let Some(t) = self.injector.pop_batch(&mut extra) {
            let n = extra.len();
            for x in extra {
                self.deques[worker].push(x);
            }
            if n > 0 {
                // We banked more than we can run right now; let a peer
                // come steal the surplus.
                self.unpark_one();
            }
            stats.tasks.fetch_add(1, Ordering::Relaxed);
            return Some((t, Source::Injector));
        }
        // 3. Steal sweep, starting past ourselves so victims rotate.
        let n = self.deques.len();
        for i in 1..n {
            let victim = (worker + i) % n;
            let mut extra = Vec::new();
            if let Some(t) = self.deques[victim].steal_half(&mut extra) {
                let moved = 1 + extra.len() as u64;
                for x in extra {
                    self.deques[worker].push(x);
                }
                stats.steals.fetch_add(1, Ordering::Relaxed);
                stats.stolen_tasks.fetch_add(moved, Ordering::Relaxed);
                stats.tasks.fetch_add(1, Ordering::Relaxed);
                return Some((t, Source::Stolen { victim }));
            }
        }
        None
    }

    /// Park `worker` until new work is submitted or [`PARK_TIMEOUT`]
    /// elapses. Returns the time actually spent parked.
    pub(crate) fn park(&self, worker: usize) -> Duration {
        let parked = self.parkers[worker].park(PARK_TIMEOUT);
        self.stats[worker]
            .park_us
            .fetch_add(parked.as_micros() as u64, Ordering::Relaxed);
        parked
    }

    pub(crate) fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.unpark_all();
    }

    pub(crate) fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Ready tasks currently queued anywhere in the pool.
    #[allow(dead_code)]
    pub(crate) fn queued(&self) -> usize {
        self.injector.len() + self.deques.iter().map(|d| d.len()).sum::<usize>()
    }

    fn unpark_one(&self) {
        let n = self.parkers.len();
        let at = self.wake_rr.fetch_add(1, Ordering::Relaxed);
        self.parkers[at % n].unpark();
    }

    fn unpark_all(&self) {
        for p in &self.parkers {
            p.unpark();
        }
    }

    // --- stats accessors (folded into NodeMetrics at teardown) ---

    pub(crate) fn steals(&self, worker: usize) -> u64 {
        self.stats[worker].steals.load(Ordering::Relaxed)
    }

    pub(crate) fn stolen_tasks(&self, worker: usize) -> u64 {
        self.stats[worker].stolen_tasks.load(Ordering::Relaxed)
    }

    pub(crate) fn park_time(&self, worker: usize) -> Duration {
        Duration::from_micros(self.stats[worker].park_us.load(Ordering::Relaxed))
    }

    pub(crate) fn tasks(&self, worker: usize) -> u64 {
        self.stats[worker].tasks.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn fetch_prefers_local_then_injector() {
        let pool: Pool<u32> = Pool::new(2);
        pool.submit(10); // injector
        pool.submit_local(0, 20); // worker 0's deque
        let (t, src) = pool.try_fetch(0).unwrap();
        assert_eq!((t, src), (20, Source::Local));
        let (t, src) = pool.try_fetch(0).unwrap();
        assert_eq!((t, src), (10, Source::Injector));
        assert!(pool.try_fetch(0).is_none());
    }

    #[test]
    fn injector_surplus_lands_in_own_deque() {
        let pool: Pool<u32> = Pool::new(2);
        pool.submit_batch(0..6);
        let (t, src) = pool.try_fetch(0).unwrap();
        assert_eq!((t, src), (0, Source::Injector));
        // Batch of 4 pulled: 0 executed, 1..=3 banked locally (LIFO).
        assert_eq!(pool.try_fetch(0), Some((3, Source::Local)));
        assert_eq!(pool.try_fetch(0), Some((2, Source::Local)));
        assert_eq!(pool.try_fetch(0), Some((1, Source::Local)));
        // 4 and 5 still in the injector.
        assert_eq!(pool.try_fetch(0), Some((4, Source::Injector)));
    }

    #[test]
    fn dry_worker_steals_from_peer() {
        let pool: Pool<u32> = Pool::new(2);
        for i in 0..8 {
            pool.submit_local(0, i);
        }
        let (t, src) = pool.try_fetch(1).unwrap();
        assert_eq!(src, Source::Stolen { victim: 0 });
        assert_eq!(t, 0); // thief takes the victim's oldest
        assert_eq!(pool.steals(1), 1);
        assert_eq!(pool.stolen_tasks(1), 4); // half of 8
    }

    /// The headline liveness bound: a worker must not sit parked while
    /// a peer's deque holds ready tasks beyond the bounded park window.
    /// Worker 0 never runs; worker 1 must drain all of worker 0's
    /// preloaded tasks via steals, and quickly.
    #[test]
    fn starvation_window_is_bounded() {
        const TASKS: u64 = 64;
        let pool: Arc<Pool<u64>> = Arc::new(Pool::new(2));
        for i in 0..TASKS {
            pool.submit_local(0, i);
        }
        let thief = Arc::clone(&pool);
        let start = Instant::now();
        let h = std::thread::spawn(move || {
            let mut got = 0u64;
            while got < TASKS {
                match thief.try_fetch(1) {
                    Some(_) => got += 1,
                    None => {
                        thief.park(1);
                    }
                }
            }
            got
        });
        let got = h.join().unwrap();
        let elapsed = start.elapsed();
        assert_eq!(got, TASKS);
        assert!(pool.steals(1) >= 1, "thief never stole");
        // 64 trivial fetches interleaved with at most a handful of
        // 1ms parks must finish well inside a second.
        assert!(elapsed < Duration::from_secs(1), "took {elapsed:?}");
        assert!(
            pool.park_time(1) < Duration::from_millis(500),
            "parked {:?} while peer held ready tasks",
            pool.park_time(1)
        );
    }

    #[test]
    fn shutdown_unparks_everyone() {
        let pool: Arc<Pool<u32>> = Arc::new(Pool::new(3));
        let mut handles = Vec::new();
        for w in 0..3 {
            let p = Arc::clone(&pool);
            handles.push(std::thread::spawn(move || {
                while !p.is_shutdown() {
                    if p.try_fetch(w).is_none() {
                        p.park(w);
                    }
                }
            }));
        }
        std::thread::sleep(Duration::from_millis(20));
        pool.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    }
}
