//! Per-worker ready-task deque.
//!
//! The owner pushes and pops at the *back* (LIFO): the task it just
//! made ready is the one whose input frames are still warm in cache.
//! Thieves steal from the *front* (FIFO): they take the oldest —
//! coldest — tasks, which the owner would have reached last anyway, so
//! steals minimally disturb the owner's locality.
//!
//! The deque is a mutex around a `VecDeque` rather than a lock-free
//! Chase-Lev array: the workspace runs on in-tree shims (no
//! `crossbeam-deque`), and at simulation scale the lock is uncontended
//! for the owner and briefly contended only while a thief sweeps.

use std::collections::VecDeque;
use std::sync::Mutex;

pub(crate) struct WorkerDeque<T> {
    q: Mutex<VecDeque<T>>,
}

impl<T> WorkerDeque<T> {
    pub(crate) fn new() -> Self {
        WorkerDeque {
            q: Mutex::new(VecDeque::new()),
        }
    }

    /// Owner-side push (back of the deque).
    pub(crate) fn push(&self, t: T) {
        self.q
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push_back(t);
    }

    /// Owner-side pop (back of the deque, LIFO — cache-warm first).
    pub(crate) fn pop(&self) -> Option<T> {
        self.q.lock().unwrap_or_else(|p| p.into_inner()).pop_back()
    }

    pub(crate) fn len(&self) -> usize {
        self.q.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// Thief-side steal: take up to half of the victim's tasks (at
    /// least one) from the *front*. The first stolen task is returned
    /// for immediate execution; the rest are handed back in `extra` for
    /// the thief to keep in its own deque.
    pub(crate) fn steal_half(&self, extra: &mut Vec<T>) -> Option<T> {
        let mut q = self.q.lock().unwrap_or_else(|p| p.into_inner());
        let n = q.len();
        if n == 0 {
            return None;
        }
        let take = (n / 2).clamp(1, STEAL_CAP);
        let first = q.pop_front();
        for _ in 1..take {
            if let Some(t) = q.pop_front() {
                extra.push(t);
            }
        }
        first
    }
}

/// Upper bound on tasks moved per steal, so one sweep over a huge
/// backlog doesn't just relocate the imbalance.
const STEAL_CAP: usize = 16;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_is_lifo() {
        let d = WorkerDeque::new();
        d.push(1);
        d.push(2);
        d.push(3);
        assert_eq!(d.pop(), Some(3));
        assert_eq!(d.pop(), Some(2));
        assert_eq!(d.pop(), Some(1));
        assert_eq!(d.pop(), None);
    }

    #[test]
    fn thief_is_fifo_and_takes_half() {
        let d = WorkerDeque::new();
        for i in 0..8 {
            d.push(i);
        }
        let mut extra = Vec::new();
        let first = d.steal_half(&mut extra);
        // Half of 8 = 4 stolen, oldest first.
        assert_eq!(first, Some(0));
        assert_eq!(extra, vec![1, 2, 3]);
        assert_eq!(d.len(), 4);
        // Owner still pops its newest.
        assert_eq!(d.pop(), Some(7));
    }

    #[test]
    fn steal_from_single_task_deque_takes_it() {
        let d = WorkerDeque::new();
        d.push(42);
        let mut extra = Vec::new();
        assert_eq!(d.steal_half(&mut extra), Some(42));
        assert!(extra.is_empty());
        assert_eq!(d.len(), 0);
    }

    #[test]
    fn steal_is_capped() {
        let d = WorkerDeque::new();
        for i in 0..100 {
            d.push(i);
        }
        let mut extra = Vec::new();
        d.steal_half(&mut extra).unwrap();
        assert_eq!(extra.len(), STEAL_CAP - 1);
        assert_eq!(d.len(), 100 - STEAL_CAP);
    }
}
