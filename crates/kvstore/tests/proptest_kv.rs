//! Property tests: the KV store behaves like a model HashMap under
//! arbitrary operation sequences, and ownership routing is total.

use bytes::Bytes;
use hamr_kvstore::KvStore;
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Put(Vec<u8>, Vec<u8>),
    Remove(Vec<u8>),
    Get(Vec<u8>),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let key = prop::collection::vec(any::<u8>(), 0..6);
    let value = prop::collection::vec(any::<u8>(), 0..10);
    prop_oneof![
        (key.clone(), value).prop_map(|(k, v)| Op::Put(k, v)),
        key.clone().prop_map(Op::Remove),
        key.prop_map(Op::Get),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Shard-level semantics match a HashMap exactly.
    #[test]
    fn shard_matches_model(ops in prop::collection::vec(op_strategy(), 0..120)) {
        let store = KvStore::new(1);
        let shard = store.shard(0);
        let mut model: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
        for op in ops {
            match op {
                Op::Put(k, v) => {
                    let prev = shard.put(Bytes::from(k.clone()), Bytes::from(v.clone()));
                    let model_prev = model.insert(k, v);
                    prop_assert_eq!(prev.map(|b| b.to_vec()), model_prev);
                }
                Op::Remove(k) => {
                    let prev = shard.remove(&k);
                    prop_assert_eq!(prev.map(|b| b.to_vec()), model.remove(&k));
                }
                Op::Get(k) => {
                    prop_assert_eq!(
                        shard.get(&k).map(|b| b.to_vec()),
                        model.get(&k).cloned()
                    );
                }
            }
        }
        prop_assert_eq!(shard.len(), model.len());
        let expected_bytes: usize = model.iter().map(|(k, v)| k.len() + v.len()).sum();
        prop_assert_eq!(shard.resident_bytes() as usize, expected_bytes);
    }

    /// Store-level routing: every key lands only on its owner, and the
    /// owner is stable.
    #[test]
    fn routing_is_total_and_stable(
        keys in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..8), 1..60),
        nodes in 1usize..6,
    ) {
        let store = KvStore::new(nodes);
        for k in &keys {
            store.put(Bytes::from(k.clone()), Bytes::from_static(b"v"));
        }
        for k in &keys {
            let owner = store.owner(k);
            prop_assert!(owner < nodes);
            prop_assert_eq!(store.owner(k), owner, "owner must be stable");
            prop_assert!(store.shard(owner).get(k).is_some());
            for n in 0..nodes {
                if n != owner {
                    prop_assert!(store.shard(n).get(k).is_none());
                }
            }
        }
    }
}
