//! Distributed in-memory key-value store for HAMR.
//!
//! The paper (§5.2, §7) describes a "key-value store" component under
//! development: one JVM per node holds shared in-memory state that all
//! tasks on the node can access, so e.g. K-Cliques can "build the graph
//! into memory distributedly" and PageRank iterations can keep adjacency
//! lists resident between jobs.
//!
//! This crate is that component. A [`KvStore`] has one [`Shard`] per
//! cluster node; keys are owned by the node `stable_hash(key) % nodes`.
//! Flowlets shuffled with `Exchange::Hash` receive exactly the keys
//! their node owns, so the common access pattern is purely node-local.
//! Each shard is internally sub-sharded to keep concurrent flowlet
//! tasks from contending on one lock.
//!
//! State deliberately persists across jobs — that is the point: it is
//! the "in-memory intermediate data organized in a distributed manner"
//! that replaces Hadoop's inter-job HDFS round trip.

use bytes::Bytes;
use hamr_codec::{partition, Codec};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of lock-striped sub-maps per shard.
const SUB_SHARDS: usize = 16;

/// One node's slice of the store.
pub struct Shard {
    maps: Vec<RwLock<HashMap<Bytes, Bytes>>>,
    bytes: AtomicU64,
}

impl Shard {
    fn new() -> Self {
        Shard {
            maps: (0..SUB_SHARDS)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            bytes: AtomicU64::new(0),
        }
    }

    #[inline]
    fn map_for(&self, key: &[u8]) -> &RwLock<HashMap<Bytes, Bytes>> {
        // Use the *upper* hash bits: the lower bits already routed the
        // key to this node, so reusing them would collapse a node's
        // keys into a couple of sub-shards.
        let idx = (hamr_codec::stable_hash(key) >> 32) % SUB_SHARDS as u64;
        &self.maps[idx as usize]
    }

    /// Insert or replace; returns the previous value if any.
    pub fn put(&self, key: Bytes, value: Bytes) -> Option<Bytes> {
        let klen = key.len() as i64;
        let vlen = value.len() as i64;
        let prev = self.map_for(&key).write().insert(key, value);
        let delta = match &prev {
            // Key bytes were already accounted on first insert.
            Some(p) => vlen - p.len() as i64,
            None => klen + vlen,
        };
        self.add_bytes(delta);
        prev
    }

    /// Fetch a value by key.
    pub fn get(&self, key: &[u8]) -> Option<Bytes> {
        self.map_for(key).read().get(key).cloned()
    }

    /// Remove a key; returns the removed value if any.
    pub fn remove(&self, key: &[u8]) -> Option<Bytes> {
        let prev = self.map_for(key).write().remove(key);
        if let Some(p) = &prev {
            self.add_bytes(-((key.len() + p.len()) as i64));
        }
        prev
    }

    /// Atomically update the value for `key` with `f(old) -> new`.
    /// Returns the new value.
    pub fn update(&self, key: Bytes, f: impl FnOnce(Option<&Bytes>) -> Bytes) -> Bytes {
        let mut map = self.map_for(&key).write();
        let old = map.get(&key);
        let old_len = old.map_or(0, |v| v.len()) as i64;
        let new = f(old);
        let delta = new.len() as i64 - old_len + if old.is_none() { key.len() as i64 } else { 0 };
        map.insert(key, new.clone());
        drop(map);
        self.add_bytes(delta);
        new
    }

    fn add_bytes(&self, delta: i64) {
        if delta >= 0 {
            self.bytes.fetch_add(delta as u64, Ordering::Relaxed);
        } else {
            self.bytes.fetch_sub((-delta) as u64, Ordering::Relaxed);
        }
    }

    /// Number of keys in this shard.
    pub fn len(&self) -> usize {
        self.maps.iter().map(|m| m.read().len()).sum()
    }

    /// True when the shard holds no keys.
    pub fn is_empty(&self) -> bool {
        self.maps.iter().all(|m| m.read().is_empty())
    }

    /// Approximate resident key+value bytes.
    pub fn resident_bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Visit every entry (no ordering guarantee). Holds one sub-shard
    /// read lock at a time.
    pub fn for_each(&self, mut f: impl FnMut(&Bytes, &Bytes)) {
        for m in &self.maps {
            for (k, v) in m.read().iter() {
                f(k, v);
            }
        }
    }

    /// Drop all entries.
    pub fn clear(&self) {
        for m in &self.maps {
            m.write().clear();
        }
        self.bytes.store(0, Ordering::Relaxed);
    }

    /// Drop every key starting with `prefix` (namespaced reset: one
    /// workload's rerun cleanup must not clear other tenants' state).
    /// Returns the number of entries removed.
    pub fn remove_prefix(&self, prefix: &[u8]) -> usize {
        let mut removed = 0usize;
        let mut freed = 0i64;
        for m in &self.maps {
            let mut map = m.write();
            map.retain(|k, v| {
                if k.starts_with(prefix) {
                    removed += 1;
                    freed += (k.len() + v.len()) as i64;
                    false
                } else {
                    true
                }
            });
        }
        self.add_bytes(-freed);
        removed
    }

    // --- typed conveniences ----------------------------------------

    /// Typed insert via [`Codec`].
    pub fn put_t<K: Codec, V: Codec>(&self, key: &K, value: &V) {
        self.put(key.to_bytes(), value.to_bytes());
    }

    /// Typed fetch. Returns `None` if absent; panics on corrupt bytes
    /// (type confusion is a caller bug, not a runtime condition).
    pub fn get_t<K: Codec, V: Codec>(&self, key: &K) -> Option<V> {
        self.get(&key.to_bytes())
            .map(|v| V::from_bytes(&v).expect("kvstore value decoded as wrong type"))
    }

    /// Typed remove.
    pub fn remove_t<K: Codec, V: Codec>(&self, key: &K) -> Option<V> {
        self.remove(&key.to_bytes())
            .map(|v| V::from_bytes(&v).expect("kvstore value decoded as wrong type"))
    }
}

/// The cluster-wide store: one shard per node.
#[derive(Clone)]
pub struct KvStore {
    shards: Vec<Arc<Shard>>,
}

impl KvStore {
    /// Create a store for an `n`-node cluster.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "kvstore needs at least one shard");
        KvStore {
            shards: (0..n).map(|_| Arc::new(Shard::new())).collect(),
        }
    }

    /// Number of node shards.
    pub fn cluster_size(&self) -> usize {
        self.shards.len()
    }

    /// The shard resident on `node`.
    pub fn shard(&self, node: usize) -> Arc<Shard> {
        Arc::clone(&self.shards[node])
    }

    /// Which node owns `key` under hash partitioning.
    pub fn owner(&self, key: &[u8]) -> usize {
        partition(key, self.shards.len())
    }

    /// Store-wide key count.
    pub fn total_len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// Store-wide resident bytes.
    pub fn total_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.resident_bytes()).sum()
    }

    /// Clear every shard.
    pub fn clear(&self) {
        for s in &self.shards {
            s.clear();
        }
    }

    /// Drop every key starting with `prefix` on every shard. Returns
    /// the total number of entries removed.
    pub fn remove_prefix(&self, prefix: &[u8]) -> usize {
        self.shards.iter().map(|s| s.remove_prefix(prefix)).sum()
    }

    /// Get from the owning shard (location-transparent read).
    pub fn get(&self, key: &[u8]) -> Option<Bytes> {
        self.shards[self.owner(key)].get(key)
    }

    /// Put to the owning shard (location-transparent write).
    pub fn put(&self, key: Bytes, value: Bytes) -> Option<Bytes> {
        self.shards[self.owner(&key)].put(key, value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_remove_roundtrip() {
        let shard = Shard::new();
        assert!(shard.put(Bytes::from("k"), Bytes::from("v1")).is_none());
        assert_eq!(shard.get(b"k").unwrap(), "v1");
        assert_eq!(
            shard.put(Bytes::from("k"), Bytes::from("v2")).unwrap(),
            "v1"
        );
        assert_eq!(shard.remove(b"k").unwrap(), "v2");
        assert!(shard.get(b"k").is_none());
        assert!(shard.is_empty());
    }

    #[test]
    fn update_applies_function() {
        let shard = Shard::new();
        let v = shard.update(Bytes::from("cnt"), |old| {
            assert!(old.is_none());
            1u64.to_bytes()
        });
        assert_eq!(u64::from_bytes(&v).unwrap(), 1);
        shard.update(Bytes::from("cnt"), |old| {
            let n = u64::from_bytes(old.unwrap()).unwrap();
            (n + 1).to_bytes()
        });
        assert_eq!(shard.get_t::<String, u64>(&"cnt".to_string()), None); // different key encoding
        let raw = shard.get(b"cnt").unwrap();
        assert_eq!(u64::from_bytes(&raw).unwrap(), 2);
    }

    #[test]
    fn typed_roundtrip() {
        let shard = Shard::new();
        shard.put_t(&"page".to_string(), &vec![1u64, 2, 3]);
        assert_eq!(
            shard
                .get_t::<String, Vec<u64>>(&"page".to_string())
                .unwrap(),
            vec![1, 2, 3]
        );
        assert_eq!(
            shard
                .remove_t::<String, Vec<u64>>(&"page".to_string())
                .unwrap(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn resident_bytes_tracks_content() {
        let shard = Shard::new();
        shard.put(Bytes::from("ab"), Bytes::from("cdef"));
        assert_eq!(shard.resident_bytes(), 6);
        shard.put(Bytes::from("ab"), Bytes::from("x"));
        assert_eq!(shard.resident_bytes(), 3);
        shard.remove(b"ab");
        assert_eq!(shard.resident_bytes(), 0);
    }

    #[test]
    fn for_each_visits_all() {
        let shard = Shard::new();
        for i in 0..100u64 {
            shard.put_t(&i, &(i * 2));
        }
        let mut sum = 0u64;
        shard.for_each(|_, v| sum += u64::from_bytes(v).unwrap());
        assert_eq!(sum, (0..100).map(|i| i * 2).sum::<u64>());
        assert_eq!(shard.len(), 100);
    }

    #[test]
    fn store_routes_to_owner() {
        let store = KvStore::new(4);
        for i in 0..200u64 {
            store.put(i.to_bytes(), Bytes::from("v"));
        }
        assert_eq!(store.total_len(), 200);
        // Each key lives only on its owner shard.
        for i in 0..200u64 {
            let key = i.to_bytes();
            let owner = store.owner(&key);
            assert!(store.shard(owner).get(&key).is_some());
            for n in 0..4 {
                if n != owner {
                    assert!(store.shard(n).get(&key).is_none());
                }
            }
        }
        // Keys spread across shards.
        let populated = (0..4).filter(|&n| !store.shard(n).is_empty()).count();
        assert!(populated >= 3, "keys should spread across shards");
    }

    #[test]
    fn clear_empties_everything() {
        let store = KvStore::new(2);
        store.put(Bytes::from("a"), Bytes::from("1"));
        store.put(Bytes::from("b"), Bytes::from("2"));
        store.clear();
        assert_eq!(store.total_len(), 0);
        assert_eq!(store.total_bytes(), 0);
    }

    #[test]
    fn remove_prefix_scopes_by_namespace() {
        let store = KvStore::new(2);
        store.put(Bytes::from("pr/r1"), Bytes::from("a"));
        store.put(Bytes::from("pr/r2"), Bytes::from("bb"));
        store.put(Bytes::from("km/c1"), Bytes::from("c"));
        assert_eq!(store.remove_prefix(b"pr/"), 2);
        assert_eq!(store.total_len(), 1);
        assert!(store.get(b"km/c1").is_some());
        assert!(store.get(b"pr/r1").is_none());
        // Byte accounting survives the retain pass.
        assert_eq!(store.total_bytes(), "km/c1".len() as u64 + 1);
        assert_eq!(store.remove_prefix(b"pr/"), 0);
    }

    #[test]
    fn concurrent_updates_are_atomic() {
        let shard = Arc::new(Shard::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let shard = Arc::clone(&shard);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        shard.update(Bytes::from("ctr"), |old| {
                            let n = old.map_or(0, |b| u64::from_bytes(b).unwrap());
                            (n + 1).to_bytes()
                        });
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let v = shard.get(b"ctr").unwrap();
        assert_eq!(u64::from_bytes(&v).unwrap(), 8000);
    }
}
