//! Property tests on the DFS block layer: arbitrary record sequences
//! must round-trip intact, with block invariants holding throughout.

use hamr_dfs::{Dfs, DfsConfig};
use hamr_simdisk::Disk;
use proptest::prelude::*;

fn dfs(nodes: usize, block_size: usize, replication: usize) -> Dfs {
    Dfs::new(
        (0..nodes).map(|_| Disk::new(Default::default())).collect(),
        DfsConfig {
            block_size,
            replication,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every written record sequence reads back byte-identical.
    #[test]
    fn records_roundtrip(
        records in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..40), 0..60),
        nodes in 1usize..5,
        block_size in 8usize..128,
        replication in 1usize..4,
    ) {
        let dfs = dfs(nodes, block_size, replication);
        let mut w = dfs.create("f").unwrap();
        for r in &records {
            w.write_record(r);
        }
        w.seal().unwrap();
        let flat: Vec<u8> = records.iter().flatten().copied().collect();
        prop_assert_eq!(dfs.read_all("f").unwrap(), flat);
        prop_assert_eq!(dfs.len("f").unwrap(), records.iter().map(|r| r.len()).sum::<usize>());
    }

    /// Block invariants: per-block record counts sum to the total; no
    /// block except single-record oversize ones exceeds block_size;
    /// every block has min(replication, nodes) distinct replicas.
    #[test]
    fn block_invariants(
        records in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..30), 1..50),
        nodes in 1usize..5,
        block_size in 8usize..64,
        replication in 1usize..4,
    ) {
        let dfs = dfs(nodes, block_size, replication);
        let mut w = dfs.create("f").unwrap();
        for r in &records {
            w.write_record(r);
        }
        w.seal().unwrap();
        let blocks = dfs.blocks("f").unwrap();
        let total_records: usize = blocks.iter().map(|b| b.records).sum();
        prop_assert_eq!(total_records, records.len());
        let expected_replicas = replication.min(nodes);
        for b in &blocks {
            prop_assert!(b.len <= block_size || b.records == 1,
                "multi-record block over capacity: {} > {}", b.len, block_size);
            let mut reps = b.replicas.clone();
            reps.sort_unstable();
            reps.dedup();
            prop_assert_eq!(reps.len(), expected_replicas);
        }
    }

    /// Reading block-by-block with any preferred node equals read_all.
    #[test]
    fn preferred_reads_agree(
        records in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..20), 1..30),
        prefer in 0usize..4,
    ) {
        let dfs = dfs(4, 32, 2);
        let mut w = dfs.create("f").unwrap();
        for r in &records {
            w.write_record(r);
        }
        w.seal().unwrap();
        let mut via_blocks = Vec::new();
        for i in 0..dfs.blocks("f").unwrap().len() {
            via_blocks.extend_from_slice(&dfs.read_block("f", i, Some(prefer)).unwrap());
        }
        prop_assert_eq!(via_blocks, dfs.read_all("f").unwrap());
    }

    /// Splits cover the file exactly once, in order.
    #[test]
    fn splits_partition_the_file(
        records in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..20), 1..40),
    ) {
        let dfs = dfs(3, 24, 1);
        let mut w = dfs.create("f").unwrap();
        for r in &records {
            w.write_record(r);
        }
        w.seal().unwrap();
        let splits = dfs.splits("f").unwrap();
        let total_len: usize = splits.iter().map(|s| s.len).sum();
        let total_records: usize = splits.iter().map(|s| s.records).sum();
        prop_assert_eq!(total_len, dfs.len("f").unwrap());
        prop_assert_eq!(total_records, records.len());
        for (i, s) in splits.iter().enumerate() {
            prop_assert_eq!(s.block_index, i);
        }
    }
}
