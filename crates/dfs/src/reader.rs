//! Streaming reader over a DFS file's blocks.

use crate::{BlockMeta, Dfs, DfsError, NodeId};
use std::sync::Arc;

/// Reads a DFS file block-by-block, optionally preferring replicas on a
/// given node (locality-aware consumption).
pub struct DfsReader {
    dfs: Dfs,
    path: String,
    blocks: Vec<BlockMeta>,
    next_block: usize,
    prefer: Option<NodeId>,
}

impl DfsReader {
    pub(crate) fn new(dfs: Dfs, path: String, blocks: Vec<BlockMeta>) -> Self {
        DfsReader {
            dfs,
            path,
            blocks,
            next_block: 0,
            prefer: None,
        }
    }

    /// Prefer replicas on `node` for subsequent block reads.
    pub fn prefer_node(mut self, node: NodeId) -> Self {
        self.prefer = Some(node);
        self
    }

    /// Number of blocks in the file.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Total logical file length.
    pub fn len(&self) -> usize {
        self.blocks.iter().map(|b| b.len).sum()
    }

    /// True for a zero-block file.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Read the next block's payload, or `None` at end of file.
    pub fn next_block(&mut self) -> Result<Option<Arc<Vec<u8>>>, DfsError> {
        if self.next_block >= self.blocks.len() {
            return Ok(None);
        }
        let idx = self.next_block;
        self.next_block += 1;
        self.dfs.read_block(&self.path, idx, self.prefer).map(Some)
    }

    /// Drain the remaining blocks into one buffer.
    pub fn read_to_end(&mut self) -> Result<Vec<u8>, DfsError> {
        let mut out = Vec::new();
        while let Some(block) = self.next_block()? {
            out.extend_from_slice(&block);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DfsConfig;
    use hamr_simdisk::Disk;

    fn dfs3() -> Dfs {
        Dfs::new(
            (0..3).map(|_| Disk::new(Default::default())).collect(),
            DfsConfig {
                block_size: 8,
                replication: 1,
            },
        )
    }

    #[test]
    fn reads_blocks_in_order() {
        let dfs = dfs3();
        let mut w = dfs.create("f").unwrap();
        for i in 0..4u8 {
            w.write_record(&[i; 6]);
        }
        w.seal().unwrap();
        let mut r = dfs.open("f").unwrap();
        assert_eq!(r.block_count(), 4);
        assert_eq!(r.len(), 24);
        let mut seen = Vec::new();
        while let Some(b) = r.next_block().unwrap() {
            seen.push(b[0]);
            assert_eq!(b.len(), 6);
        }
        assert_eq!(seen, vec![0, 1, 2, 3]);
        assert!(r.next_block().unwrap().is_none());
    }

    #[test]
    fn read_to_end_matches_read_all() {
        let dfs = dfs3();
        let mut w = dfs.create("f").unwrap();
        for i in 0..10u8 {
            w.write_record(&[i, i, i]);
        }
        w.seal().unwrap();
        let via_reader = dfs.open("f").unwrap().read_to_end().unwrap();
        let via_all = dfs.read_all("f").unwrap();
        assert_eq!(via_reader, via_all);
        assert_eq!(via_reader.len(), 30);
    }

    #[test]
    fn prefer_node_charges_that_disk() {
        let dfs = Dfs::new(
            (0..2).map(|_| Disk::new(Default::default())).collect(),
            DfsConfig {
                block_size: 64,
                replication: 2,
            },
        );
        let mut w = dfs.create("f").unwrap();
        w.write_record(b"0123456789");
        w.seal().unwrap();
        let before = dfs.disk(1).metrics().bytes_read;
        let mut r = dfs.open("f").unwrap().prefer_node(1);
        r.read_to_end().unwrap();
        assert_eq!(dfs.disk(1).metrics().bytes_read - before, 10);
    }
}
