//! Block-building writer for DFS files.

use crate::{Dfs, DfsError, NodeId};

/// Streams records into a DFS file, sealing a block whenever the next
/// record would overflow [`crate::DfsConfig::block_size`].
///
/// Call [`DfsWriter::seal`] to flush the final partial block and make
/// the file durable; dropping without sealing *loses* the unfinished
/// block (matching the visibility rules of real HDFS writers closely
/// enough for our purposes).
pub struct DfsWriter {
    dfs: Dfs,
    path: String,
    local: Option<NodeId>,
    buf: Vec<u8>,
    records: usize,
    sealed: bool,
}

impl DfsWriter {
    pub(crate) fn new(dfs: Dfs, path: String, local: Option<NodeId>) -> Self {
        let cap = dfs.config().block_size;
        DfsWriter {
            dfs,
            path,
            local,
            buf: Vec::with_capacity(cap),
            records: 0,
            sealed: false,
        }
    }

    /// Append one whole record; never split across blocks.
    pub fn write_record(&mut self, record: &[u8]) {
        let block_size = self.dfs.config().block_size;
        if !self.buf.is_empty() && self.buf.len() + record.len() > block_size {
            self.flush_block().expect("flush during write");
        }
        self.buf.extend_from_slice(record);
        self.records += 1;
        if self.buf.len() >= block_size {
            self.flush_block().expect("flush during write");
        }
    }

    /// Append a text line (adds the trailing newline) as one record.
    pub fn write_line(&mut self, line: &str) {
        let mut rec = Vec::with_capacity(line.len() + 1);
        rec.extend_from_slice(line.as_bytes());
        rec.push(b'\n');
        self.write_record(&rec);
    }

    /// Bytes buffered in the unsealed block.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len()
    }

    fn flush_block(&mut self) -> Result<(), DfsError> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let (id, replicas) = self.dfs.place_block(self.local);
        let payload = std::mem::take(&mut self.buf);
        let records = std::mem::take(&mut self.records);
        self.dfs
            .store_block(&self.path, id, &replicas, records, &payload)
    }

    /// Flush the final block and finish the file.
    pub fn seal(mut self) -> Result<(), DfsError> {
        self.sealed = true;
        self.flush_block()
    }
}
