//! A miniature distributed file system over [`hamr_simdisk`] disks.
//!
//! Stands in for HDFS in the reproduction. Files are sequences of
//! fixed-capacity **blocks**; each block is replicated onto `replication`
//! distinct node disks; readers and task schedulers can ask for a
//! block's **locations** to exploit locality, exactly how Hadoop assigns
//! map tasks to the node holding the split.
//!
//! One simplification relative to HDFS: block boundaries fall on
//! *record* boundaries. [`DfsWriter::write_record`] never splits a
//! record across blocks, so a split (= one block) is always a whole
//! number of records and readers need no line-reassembly protocol. The
//! locality and IO-volume behaviour — the things the evaluation depends
//! on — are unaffected.

mod reader;
mod writer;

pub use reader::DfsReader;
pub use writer::DfsWriter;

use hamr_simdisk::{Disk, DiskError};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Node index within the cluster, matching `hamr_simnet::NodeId`.
pub type NodeId = usize;

/// DFS tuning parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DfsConfig {
    /// Capacity of one block in bytes.
    pub block_size: usize,
    /// Number of replicas per block (clamped to cluster size).
    pub replication: usize,
}

impl Default for DfsConfig {
    fn default() -> Self {
        DfsConfig {
            // Scaled-down stand-in for HDFS's 128 MB.
            block_size: 1 << 20,
            replication: 2,
        }
    }
}

/// Errors from namespace operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DfsError {
    NotFound(String),
    AlreadyExists(String),
    Disk(DiskError),
    /// Block index out of range for the file.
    NoSuchBlock {
        path: String,
        block: usize,
    },
}

impl fmt::Display for DfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfsError::NotFound(p) => write!(f, "dfs file not found: {p}"),
            DfsError::AlreadyExists(p) => write!(f, "dfs file already exists: {p}"),
            DfsError::Disk(e) => write!(f, "disk error: {e}"),
            DfsError::NoSuchBlock { path, block } => {
                write!(f, "no block {block} in {path}")
            }
        }
    }
}

impl std::error::Error for DfsError {}

impl From<DiskError> for DfsError {
    fn from(e: DiskError) -> Self {
        DfsError::Disk(e)
    }
}

/// Metadata for one stored block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockMeta {
    /// Globally unique block id; the backing disk file is
    /// `dfs.blk.<id>` on every replica.
    pub id: u64,
    /// Payload length in bytes.
    pub len: usize,
    /// Number of whole records, when written via `write_record`.
    pub records: usize,
    /// Nodes holding a replica; first is the primary (write-local) one.
    pub replicas: Vec<NodeId>,
}

impl BlockMeta {
    pub(crate) fn disk_name(id: u64) -> String {
        format!("dfs.blk.{id}")
    }
}

#[derive(Debug, Clone, Default)]
struct FileMeta {
    blocks: Vec<BlockMeta>,
}

/// An input split: one block plus where it lives. What loaders and map
/// tasks are scheduled against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Split {
    pub path: String,
    pub block_index: usize,
    pub len: usize,
    pub records: usize,
    pub locations: Vec<NodeId>,
}

struct DfsInner {
    config: DfsConfig,
    disks: Vec<Disk>,
    namespace: RwLock<BTreeMap<String, FileMeta>>,
    next_block: AtomicU64,
    next_placement: AtomicU64,
}

/// Shared DFS handle. Clone freely.
#[derive(Clone)]
pub struct Dfs {
    inner: Arc<DfsInner>,
}

impl Dfs {
    /// Build a DFS over one disk per cluster node.
    pub fn new(disks: Vec<Disk>, config: DfsConfig) -> Self {
        assert!(!disks.is_empty(), "dfs needs at least one disk");
        assert!(config.block_size > 0, "block size must be positive");
        assert!(config.replication > 0, "replication must be positive");
        Dfs {
            inner: Arc::new(DfsInner {
                config,
                disks,
                namespace: RwLock::new(BTreeMap::new()),
                next_block: AtomicU64::new(0),
                next_placement: AtomicU64::new(0),
            }),
        }
    }

    /// Convenience: a DFS over `n` fresh instant disks (tests).
    pub fn in_memory(n: usize) -> Self {
        Dfs::new(
            (0..n).map(|_| Disk::new(Default::default())).collect(),
            DfsConfig::default(),
        )
    }

    pub fn cluster_size(&self) -> usize {
        self.inner.disks.len()
    }

    pub fn config(&self) -> &DfsConfig {
        &self.inner.config
    }

    /// Direct handle to a node's disk (loaders use this for node-local IO).
    pub fn disk(&self, node: NodeId) -> &Disk {
        &self.inner.disks[node]
    }

    /// Create a file, placing primary replicas round-robin.
    pub fn create(&self, path: &str) -> Result<DfsWriter, DfsError> {
        self.create_from(path, None)
    }

    /// Create a file whose primary replicas go to `local` (the HDFS
    /// "writer's node gets the first replica" rule).
    pub fn create_from(&self, path: &str, local: Option<NodeId>) -> Result<DfsWriter, DfsError> {
        {
            let mut ns = self.inner.namespace.write();
            if ns.contains_key(path) {
                return Err(DfsError::AlreadyExists(path.to_string()));
            }
            ns.insert(path.to_string(), FileMeta::default());
        }
        Ok(DfsWriter::new(self.clone(), path.to_string(), local))
    }

    /// Open an existing file for reading.
    pub fn open(&self, path: &str) -> Result<DfsReader, DfsError> {
        let blocks = self.blocks(path)?;
        Ok(DfsReader::new(self.clone(), path.to_string(), blocks))
    }

    pub fn exists(&self, path: &str) -> bool {
        self.inner.namespace.read().contains_key(path)
    }

    /// Total logical length of a file.
    pub fn len(&self, path: &str) -> Result<usize, DfsError> {
        Ok(self.blocks(path)?.iter().map(|b| b.len).sum())
    }

    /// True when the namespace has no files.
    pub fn is_empty(&self) -> bool {
        self.inner.namespace.read().is_empty()
    }

    /// Block metadata for a file.
    pub fn blocks(&self, path: &str) -> Result<Vec<BlockMeta>, DfsError> {
        self.inner
            .namespace
            .read()
            .get(path)
            .map(|m| m.blocks.clone())
            .ok_or_else(|| DfsError::NotFound(path.to_string()))
    }

    /// Input splits (one per block) with replica locations.
    pub fn splits(&self, path: &str) -> Result<Vec<Split>, DfsError> {
        Ok(self
            .blocks(path)?
            .into_iter()
            .enumerate()
            .map(|(i, b)| Split {
                path: path.to_string(),
                block_index: i,
                len: b.len,
                records: b.records,
                locations: b.replicas,
            })
            .collect())
    }

    /// Read one block's payload, preferring a replica on `prefer`.
    /// Charges the chosen replica's disk.
    pub fn read_block(
        &self,
        path: &str,
        block_index: usize,
        prefer: Option<NodeId>,
    ) -> Result<Arc<Vec<u8>>, DfsError> {
        let blocks = self.blocks(path)?;
        let meta = blocks.get(block_index).ok_or(DfsError::NoSuchBlock {
            path: path.to_string(),
            block: block_index,
        })?;
        let node = match prefer {
            Some(p) if meta.replicas.contains(&p) => p,
            _ => meta.replicas[0],
        };
        Ok(self.inner.disks[node].read_all(&BlockMeta::disk_name(meta.id))?)
    }

    /// Delete a file and all its block replicas.
    pub fn delete(&self, path: &str) -> Result<(), DfsError> {
        let meta = self
            .inner
            .namespace
            .write()
            .remove(path)
            .ok_or_else(|| DfsError::NotFound(path.to_string()))?;
        for block in &meta.blocks {
            let name = BlockMeta::disk_name(block.id);
            for &node in &block.replicas {
                self.inner.disks[node].delete(&name);
            }
        }
        Ok(())
    }

    /// All paths with the given prefix, sorted.
    pub fn list(&self, prefix: &str) -> Vec<String> {
        self.inner
            .namespace
            .read()
            .keys()
            .filter(|p| p.starts_with(prefix))
            .cloned()
            .collect()
    }

    /// Read an entire file's payload as one buffer (small files only).
    pub fn read_all(&self, path: &str) -> Result<Vec<u8>, DfsError> {
        let blocks = self.blocks(path)?;
        let mut out = Vec::with_capacity(blocks.iter().map(|b| b.len).sum());
        for (i, _) in blocks.iter().enumerate() {
            out.extend_from_slice(&self.read_block(path, i, None)?);
        }
        Ok(out)
    }

    /// Allocate an id and replica set for a new block.
    pub(crate) fn place_block(&self, local: Option<NodeId>) -> (u64, Vec<NodeId>) {
        let n = self.cluster_size();
        let id = self.inner.next_block.fetch_add(1, Ordering::Relaxed);
        let primary = match local {
            Some(node) => node % n,
            None => (self.inner.next_placement.fetch_add(1, Ordering::Relaxed) as usize) % n,
        };
        let replication = self.inner.config.replication.min(n);
        let replicas = (0..replication).map(|k| (primary + k) % n).collect();
        (id, replicas)
    }

    /// Store a sealed block's payload on every replica.
    pub(crate) fn store_block(
        &self,
        path: &str,
        id: u64,
        replicas: &[NodeId],
        records: usize,
        payload: &[u8],
    ) -> Result<(), DfsError> {
        let name = BlockMeta::disk_name(id);
        for &node in replicas {
            self.inner.disks[node].write_all(&name, payload)?;
        }
        let mut ns = self.inner.namespace.write();
        let meta = ns
            .get_mut(path)
            .ok_or_else(|| DfsError::NotFound(path.to_string()))?;
        meta.blocks.push(BlockMeta {
            id,
            len: payload.len(),
            records,
            replicas: replicas.to_vec(),
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_dfs(n: usize, block_size: usize, replication: usize) -> Dfs {
        Dfs::new(
            (0..n).map(|_| Disk::new(Default::default())).collect(),
            DfsConfig {
                block_size,
                replication,
            },
        )
    }

    #[test]
    fn write_read_roundtrip_single_block() {
        let dfs = Dfs::in_memory(3);
        let mut w = dfs.create("f").unwrap();
        w.write_record(b"hello");
        w.write_record(b" world");
        w.seal().unwrap();
        assert_eq!(dfs.read_all("f").unwrap(), b"hello world");
        assert_eq!(dfs.len("f").unwrap(), 11);
    }

    #[test]
    fn records_never_split_across_blocks() {
        let dfs = small_dfs(3, 10, 1);
        let mut w = dfs.create("f").unwrap();
        for _ in 0..5 {
            w.write_record(b"1234567"); // 7 bytes; only one fits per 10-byte block
        }
        w.seal().unwrap();
        let blocks = dfs.blocks("f").unwrap();
        assert_eq!(blocks.len(), 5);
        for b in &blocks {
            assert_eq!(b.len, 7);
            assert_eq!(b.records, 1);
        }
        assert_eq!(dfs.read_all("f").unwrap().len(), 35);
    }

    #[test]
    fn oversized_record_gets_own_block() {
        let dfs = small_dfs(2, 4, 1);
        let mut w = dfs.create("f").unwrap();
        w.write_record(b"ab");
        w.write_record(b"0123456789"); // bigger than block size
        w.write_record(b"cd");
        w.seal().unwrap();
        let blocks = dfs.blocks("f").unwrap();
        assert_eq!(blocks.len(), 3);
        assert_eq!(blocks[1].len, 10);
        assert_eq!(dfs.read_all("f").unwrap(), b"ab0123456789cd");
    }

    #[test]
    fn replication_places_on_distinct_nodes() {
        let dfs = small_dfs(4, 1024, 3);
        let mut w = dfs.create("f").unwrap();
        w.write_record(b"data");
        w.seal().unwrap();
        let blocks = dfs.blocks("f").unwrap();
        assert_eq!(blocks[0].replicas.len(), 3);
        let mut sorted = blocks[0].replicas.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3, "replicas must be distinct nodes");
    }

    #[test]
    fn replication_clamped_to_cluster_size() {
        let dfs = small_dfs(2, 1024, 5);
        let mut w = dfs.create("f").unwrap();
        w.write_record(b"x");
        w.seal().unwrap();
        assert_eq!(dfs.blocks("f").unwrap()[0].replicas.len(), 2);
    }

    #[test]
    fn local_writer_gets_primary_replica() {
        let dfs = small_dfs(4, 16, 2);
        let mut w = dfs.create_from("f", Some(2)).unwrap();
        w.write_record(b"0123456789abcde"); // one block
        w.write_record(b"0123456789abcde"); // second block
        w.seal().unwrap();
        for b in dfs.blocks("f").unwrap() {
            assert_eq!(b.replicas[0], 2);
        }
    }

    #[test]
    fn round_robin_spreads_primaries() {
        let dfs = small_dfs(4, 8, 1);
        let mut w = dfs.create("f").unwrap();
        for _ in 0..8 {
            w.write_record(b"1234567"); // one record per block
        }
        w.seal().unwrap();
        let primaries: std::collections::BTreeSet<_> = dfs
            .blocks("f")
            .unwrap()
            .iter()
            .map(|b| b.replicas[0])
            .collect();
        assert!(
            primaries.len() >= 2,
            "primaries should spread: {primaries:?}"
        );
    }

    #[test]
    fn splits_report_locations_and_records() {
        let dfs = small_dfs(3, 8, 2);
        let mut w = dfs.create("f").unwrap();
        for _ in 0..6 {
            w.write_record(b"abc"); // two 3-byte records per 8-byte block
        }
        w.seal().unwrap();
        let splits = dfs.splits("f").unwrap();
        assert_eq!(splits.len(), 3);
        for s in &splits {
            assert_eq!(s.records, 2);
            assert_eq!(s.len, 6);
            assert_eq!(s.locations.len(), 2);
        }
    }

    #[test]
    fn read_block_prefers_local_replica() {
        let dfs = small_dfs(3, 1024, 2);
        let mut w = dfs.create_from("f", Some(0)).unwrap();
        w.write_record(b"payload");
        w.seal().unwrap();
        let replicas = dfs.blocks("f").unwrap()[0].replicas.clone();
        let other = replicas[1];
        let before = dfs.disk(other).metrics().bytes_read;
        let _ = dfs.read_block("f", 0, Some(other)).unwrap();
        assert_eq!(
            dfs.disk(other).metrics().bytes_read - before,
            7,
            "preferred replica's disk should serve the read"
        );
    }

    #[test]
    fn delete_removes_blocks_from_disks() {
        let dfs = small_dfs(2, 16, 2);
        let mut w = dfs.create("f").unwrap();
        w.write_record(b"0123456789");
        w.seal().unwrap();
        assert!(dfs.disk(0).used_bytes() + dfs.disk(1).used_bytes() > 0);
        dfs.delete("f").unwrap();
        assert!(!dfs.exists("f"));
        assert_eq!(dfs.disk(0).used_bytes() + dfs.disk(1).used_bytes(), 0);
    }

    #[test]
    fn duplicate_create_fails() {
        let dfs = Dfs::in_memory(2);
        dfs.create("f").unwrap().seal().unwrap();
        assert!(matches!(dfs.create("f"), Err(DfsError::AlreadyExists(_))));
    }

    #[test]
    fn missing_file_errors() {
        let dfs = Dfs::in_memory(2);
        assert!(matches!(dfs.open("nope"), Err(DfsError::NotFound(_))));
        assert!(matches!(dfs.delete("nope"), Err(DfsError::NotFound(_))));
        assert!(matches!(
            dfs.read_block("nope", 0, None),
            Err(DfsError::NotFound(_))
        ));
    }

    #[test]
    fn out_of_range_block_errors() {
        let dfs = Dfs::in_memory(2);
        let mut w = dfs.create("f").unwrap();
        w.write_record(b"x");
        w.seal().unwrap();
        assert!(matches!(
            dfs.read_block("f", 5, None),
            Err(DfsError::NoSuchBlock { .. })
        ));
    }

    #[test]
    fn list_filters_by_prefix() {
        let dfs = Dfs::in_memory(1);
        for p in ["a/1", "a/2", "b/1"] {
            dfs.create(p).unwrap().seal().unwrap();
        }
        assert_eq!(dfs.list("a/"), vec!["a/1", "a/2"]);
        assert_eq!(dfs.list(""), vec!["a/1", "a/2", "b/1"]);
    }

    #[test]
    fn empty_file_has_no_blocks() {
        let dfs = Dfs::in_memory(2);
        dfs.create("f").unwrap().seal().unwrap();
        assert!(dfs.blocks("f").unwrap().is_empty());
        assert_eq!(dfs.read_all("f").unwrap(), Vec::<u8>::new());
        assert!(dfs.splits("f").unwrap().is_empty());
    }
}
