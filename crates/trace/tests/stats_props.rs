//! Property tests for the data-plane statistics sketches.
//!
//! The contracts the rest of the system leans on:
//!
//! - the HLL distinct estimate stays inside its 3-sigma error band
//!   (sigma = 1.04/sqrt(2^12) ~ 1.63%) on random, skewed, and
//!   adversarially ordered streams — duplicates and ordering must not
//!   move the estimate at all, since the register fold is a pure max;
//! - SpaceSaving never under-reports a tracked key (`count` is an
//!   upper bound on the true count) and never over-reports its
//!   guaranteed floor (`count - err` is a lower bound) — the skew
//!   layer's split decisions ride on that floor;
//! - size quantiles are monotone in `q` and bounded by the observed
//!   extremes;
//! - sketch merge is associative and commutative, so partition-level
//!   sketches can be folded in any order the teardown happens to run.
//!
//! Streams are generated as *keys* and hashed with a splitmix64
//! finalizer — the sketches' accuracy contract assumes uniform hashes
//! (production feeds them `stable_hash` output), so adversarial here
//! means adversarial key patterns and orderings, not broken hashes.

use hamr_trace::stats::{Hll, SizeHist};
use hamr_trace::{SketchSet, SpaceSaving};
use proptest::prelude::*;
use std::collections::HashMap;

/// splitmix64 finalizer: the uniform hash the sketches assume.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn assert_hll_in_band(hll: &Hll, truth: u64) {
    let band = 3.0 * Hll::standard_error() * truth as f64 + 1.0;
    let est = hll.estimate();
    assert!(
        (est - truth as f64).abs() <= band,
        "HLL estimate {est:.1} outside 3-sigma band of true {truth} (+/-{band:.1})"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random stream of distinct keys: estimate within 3 sigma.
    #[test]
    fn hll_random_stream_within_band(n in 1u64..20_000, seed in any::<u64>()) {
        let mut hll = Hll::new();
        for i in 0..n {
            hll.insert(mix(seed ^ i));
        }
        assert_hll_in_band(&hll, n);
    }

    /// Skewed stream: heavy duplication must not move the estimate —
    /// the register fold only sees the set of hashes.
    #[test]
    fn hll_skewed_stream_counts_distinct_only(
        n in 1u64..5_000,
        seed in any::<u64>(),
        reps in 1u64..8,
    ) {
        let mut hll = Hll::new();
        for i in 0..n {
            // Key i appears 1 + (i % reps^2) times: a deterministic
            // skew ramp with a handful of very hot keys.
            for _ in 0..=(i % (reps * reps)) {
                hll.insert(mix(seed ^ i));
            }
        }
        let mut once = Hll::new();
        for i in 0..n {
            once.insert(mix(seed ^ i));
        }
        prop_assert_eq!(hll.distinct(), once.distinct());
        assert_hll_in_band(&hll, n);
    }

    /// Adversarial ordering: reversed, interleaved, and shard-merged
    /// presentations of the same key set agree exactly.
    #[test]
    fn hll_order_and_merge_invariant(n in 1u64..8_000, seed in any::<u64>()) {
        let mut fwd = Hll::new();
        let mut rev = Hll::new();
        let mut shards = [Hll::new(), Hll::new(), Hll::new()];
        for i in 0..n {
            fwd.insert(mix(seed ^ i));
        }
        for i in (0..n).rev() {
            rev.insert(mix(seed ^ i));
        }
        for i in 0..n {
            shards[(i % 3) as usize].insert(mix(seed ^ i));
        }
        let mut merged = Hll::new();
        for s in &shards {
            merged.merge(s);
        }
        prop_assert_eq!(fwd.distinct(), rev.distinct());
        prop_assert_eq!(fwd.distinct(), merged.distinct());
        assert_hll_in_band(&fwd, n);
    }

    /// SpaceSaving bracketing invariant under eviction pressure: for
    /// every tracked key, `count - err <= true <= count`, and the
    /// sketch's total equals the stream's total weight.
    #[test]
    fn space_saving_brackets_true_counts(
        stream in prop::collection::vec((0u64..64, 1u64..16), 1..2_000),
        cap in 4usize..24,
    ) {
        let mut ss = SpaceSaving::new(cap);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut total = 0u64;
        for (key, w) in &stream {
            let h = mix(*key);
            ss.observe(h, None, *w);
            *truth.entry(h).or_insert(0) += *w;
            total += *w;
        }
        prop_assert_eq!(ss.total(), total);
        for e in ss.top() {
            let t = truth[&e.hash];
            prop_assert!(e.count >= t, "count {} under-reports true {}", e.count, t);
            prop_assert!(
                e.count - e.err <= t,
                "guaranteed {} over-reports true {}", e.count - e.err, t
            );
            prop_assert_eq!(ss.guaranteed(e.hash), e.count - e.err);
        }
    }

    /// With fewer distinct keys than capacity nothing is ever evicted:
    /// counts are exact and the guaranteed floor equals the count.
    #[test]
    fn space_saving_exact_below_capacity(
        stream in prop::collection::vec((0u64..16, 1u64..16), 1..1_000),
    ) {
        let mut ss = SpaceSaving::new(16);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for (key, w) in &stream {
            let h = mix(*key);
            ss.observe(h, None, *w);
            *truth.entry(h).or_insert(0) += *w;
        }
        for (h, t) in &truth {
            prop_assert_eq!(ss.get(*h), Some((*t, 0)));
            prop_assert_eq!(ss.guaranteed(*h), *t);
        }
    }

    /// Quantiles are monotone in q and bounded by the observed extremes.
    #[test]
    fn size_quantiles_monotone_and_bounded(
        sizes in prop::collection::vec(0u64..1_000_000, 1..500),
    ) {
        let mut hist = SizeHist::new();
        for s in &sizes {
            hist.record(*s);
        }
        let qs: Vec<u64> = [0.0, 0.5, 0.9, 0.99, 1.0]
            .iter()
            .map(|q| hist.quantile(*q))
            .collect();
        for w in qs.windows(2) {
            prop_assert!(w[0] <= w[1], "quantiles not monotone: {qs:?}");
        }
        // Log2 buckets round up to the bucket's upper bound: the p100
        // answer may exceed the true max by at most 2x (next power of
        // two), and can never fall below the true minimum's bucket.
        let max = *sizes.iter().max().unwrap();
        prop_assert!(qs[4] >= max, "p100 {} below true max {max}", qs[4]);
        prop_assert!(qs[4] <= max.next_power_of_two().max(1) * 2);
        prop_assert_eq!(hist.count(), sizes.len() as u64);
        prop_assert_eq!(hist.sum(), sizes.iter().sum::<u64>());
    }

    /// Sketch merge is associative and commutative. Top-K stays in the
    /// no-eviction regime (key space <= K) where SpaceSaving merge is
    /// exact; HLL and size-histogram merges are exact in any regime.
    #[test]
    fn sketch_merge_assoc_comm(
        a in prop::collection::vec((0u64..32, 0usize..4_000), 0..300),
        b in prop::collection::vec((0u64..32, 0usize..4_000), 0..300),
        c in prop::collection::vec((0u64..32, 0usize..4_000), 0..300),
    ) {
        let build = |stream: &[(u64, usize)]| {
            let mut s = SketchSet::new(32);
            for (key, len) in stream {
                s.observe(mix(*key), &key.to_le_bytes(), *len);
            }
            s
        };
        let fold = |parts: &[&[(u64, usize)]]| {
            let mut acc = SketchSet::new(32);
            for p in parts {
                acc.merge(&build(p));
            }
            acc
        };
        let fingerprint = |s: &SketchSet| {
            let mut top: Vec<(u64, u64, u64)> =
                s.topk.top().iter().map(|e| (e.hash, e.count, e.err)).collect();
            top.sort_unstable();
            (
                s.records,
                s.bytes,
                s.distinct(),
                s.sizes.quantile(0.5),
                s.sizes.quantile(0.99),
                top,
            )
        };
        let ab_c = fingerprint(&fold(&[&a, &b, &c]));
        let c_ba = fingerprint(&fold(&[&c, &b, &a]));
        let b_ac = fingerprint(&fold(&[&b, &a, &c]));
        prop_assert_eq!(&ab_c, &c_ba);
        prop_assert_eq!(&ab_c, &b_ac);
    }
}
