//! Property tests for the durable flight journal: random record
//! streams under tight rotation budgets (hand-rolled LCG generators,
//! matching `registry_props.rs` — no proptest dependency).
//!
//! The invariant rotation must preserve: whatever retention deletes,
//! what remains on disk is a *contiguous, ordered suffix* of the
//! appended stream (whole oldest segments fall off the front; nothing
//! in the middle is lost, reordered, or duplicated), the byte budget
//! holds up to one open-segment of slack, and a reopen mid-stream is
//! invisible in the read-back.

use hamr_trace::{read_journal, Journal, JournalConfig, JournalRecord};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

/// Deterministic pseudo-random stream.
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

fn temp_dir(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "hamr_journal_props_{test}_{}_{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A record whose identity encodes its stream position `i`, with a
/// random-length payload so frame sizes vary across the stream.
fn random_record(i: u64, state: &mut u64) -> JournalRecord {
    let fill = "x".repeat((lcg(state) % 96) as usize);
    match lcg(state) % 3 {
        0 => JournalRecord::JobStart {
            job: format!("job-{i}"),
            engine: "hamr".into(),
            t_us: i,
        },
        1 => JournalRecord::JobEnd {
            job: format!("job-{i}"),
            ok: lcg(state).is_multiple_of(2),
            t_us: i,
            elapsed_us: lcg(state) % 1_000_000,
            shuffled_bytes: lcg(state),
        },
        _ => JournalRecord::Incident {
            job: format!("job-{i}"),
            class: "Hang".into(),
            epoch: i,
            detail: fill,
        },
    }
}

/// Stream position encoded in a record by [`random_record`].
fn position(rec: &JournalRecord) -> u64 {
    match rec {
        JournalRecord::JobStart { t_us, .. } => *t_us,
        JournalRecord::JobEnd { t_us, .. } => *t_us,
        JournalRecord::Incident { epoch, .. } => *epoch,
        other => panic!("unexpected record in stream: {other:?}"),
    }
}

#[test]
fn rotation_preserves_an_ordered_suffix_under_any_stream() {
    let mut state = 0x9E3779B97F4A7C15u64;
    for round in 0..12u64 {
        let dir = temp_dir("suffix");
        let mut cfg = JournalConfig::new(&dir);
        // Tiny segments force many rotations; a budget of a few
        // segments forces retention to actually delete.
        cfg.segment_bytes = 256 + lcg(&mut state) % 768;
        cfg.max_total_bytes = cfg.segment_bytes * (2 + lcg(&mut state) % 4);
        let journal = Journal::open(cfg.clone()).expect("open journal");
        let n = 64 + lcg(&mut state) % 192;
        let mut appended = Vec::with_capacity(n as usize);
        for i in 0..n {
            let rec = random_record(i, &mut state);
            journal.append(&rec);
            appended.push(rec);
        }
        assert_eq!(journal.io_errors(), 0, "round {round}: io errors");
        drop(journal);

        let read = read_journal(&dir).expect("read back");
        assert_eq!(read.truncated_frames, 0, "round {round}");
        assert_eq!(read.unknown_records, 0, "round {round}");
        let k = read.records.len();
        assert!(k >= 1, "round {round}: everything was retained away");
        assert_eq!(
            read.records[..],
            appended[appended.len() - k..],
            "round {round}: read-back is not the appended suffix"
        );
        // Suffix positions are consecutive (redundant with the slice
        // equality above, but states the invariant directly).
        for (offset, rec) in read.records.iter().enumerate() {
            assert_eq!(position(rec), (n as usize - k + offset) as u64);
        }
        // Retention holds the byte budget up to one segment of slack
        // (the open segment is never deleted, and rotation seals only
        // after an append overflows the segment budget).
        let on_disk: u64 = std::fs::read_dir(&dir)
            .expect("journal dir")
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".hjs"))
            .filter_map(|e| e.metadata().ok())
            .map(|m| m.len())
            .sum();
        assert!(
            on_disk <= cfg.max_total_bytes + 2 * cfg.segment_bytes,
            "round {round}: {on_disk} bytes on disk exceeds budget {} + slack",
            cfg.max_total_bytes
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn reopen_mid_stream_is_invisible_in_the_read_back() {
    let mut state = 0xD1B54A32D192ED03u64;
    for round in 0..8u64 {
        let dir = temp_dir("reopen");
        let mut cfg = JournalConfig::new(&dir);
        cfg.segment_bytes = 384;
        cfg.max_total_bytes = 0; // retention off: every record survives
        let n = 48 + lcg(&mut state) % 96;
        let cut = 1 + lcg(&mut state) % (n - 1);
        let mut appended = Vec::with_capacity(n as usize);
        let journal = Journal::open(cfg.clone()).expect("open");
        for i in 0..cut {
            let rec = random_record(i, &mut state);
            journal.append(&rec);
            appended.push(rec);
        }
        drop(journal); // flushes; simulates a clean process exit
        let journal = Journal::open(cfg).expect("reopen");
        for i in cut..n {
            let rec = random_record(i, &mut state);
            journal.append(&rec);
            appended.push(rec);
        }
        drop(journal);

        let read = read_journal(&dir).expect("read back");
        assert_eq!(read.truncated_frames, 0, "round {round}");
        assert_eq!(
            read.records, appended,
            "round {round}: reopen at {cut}/{n} lost or reordered records"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
