//! Property tests for the unified metrics registry: hand-rolled
//! generators (an LCG, not a proptest dependency) driving many random
//! rounds per property.

use hamr_trace::{Labels, MetricsRegistry, SampleValue};

/// Deterministic pseudo-random stream.
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// Racing registrations of the same (name, labels) from many threads
/// must converge on ONE shared cell: no increment may be lost to a
/// stale duplicate handle, and exactly one series may exist.
#[test]
fn concurrent_registration_shares_one_cell() {
    for round in 0..16u32 {
        let registry = MetricsRegistry::new();
        let threads = 8u64;
        let per_thread = 500u64;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let registry = &registry;
                scope.spawn(move || {
                    // Register *inside* the thread so registrations race.
                    let c = registry
                        .counter("race_hits_total", Labels::new().engine("hamr").node(round));
                    let h = registry
                        .histogram("race_latency_us", Labels::new().engine("hamr").node(round));
                    for i in 0..per_thread {
                        c.inc();
                        h.record_us(i);
                    }
                });
            }
        });
        let snap = registry.snapshot();
        assert_eq!(snap.counter_total("race_hits_total"), threads * per_thread);
        let hist = snap
            .get("race_latency_us", &Labels::new().engine("hamr").node(round))
            .expect("histogram series exists");
        match hist {
            SampleValue::Histogram(h) => assert_eq!(h.count, threads * per_thread),
            other => panic!("expected histogram, got {other:?}"),
        }
        assert_eq!(registry.series_count(), 2, "one series per kind");
        assert_eq!(registry.dropped_series(), 0);
    }
}

/// Epoch deltas must tile the counter's history exactly: each delta
/// equals what that epoch added, and the deltas sum to the final
/// total (no loss, no double counting, regardless of the increment
/// pattern).
#[test]
fn epoch_deltas_tile_counter_history() {
    let mut state = 0x9E3779B97F4A7C15u64;
    for _round in 0..10 {
        let registry = MetricsRegistry::new();
        let c = registry.counter("delta_bytes_total", Labels::new().engine("hamr"));
        let mut per_epoch = Vec::new();
        let epochs = 3 + (lcg(&mut state) % 10) as usize;
        for e in 0..epochs {
            let mut added = 0u64;
            for _ in 0..lcg(&mut state) % 50 {
                let x = lcg(&mut state) % 1000;
                c.add(x);
                added += x;
            }
            per_epoch.push(added);
            registry.epoch_snapshot(&format!("epoch{e}"));
        }
        let deltas = registry.epoch_deltas();
        assert_eq!(deltas.len(), epochs);
        let mut sum = 0u64;
        for (i, delta) in deltas.iter().enumerate() {
            let got = delta.counter_total("delta_bytes_total");
            assert_eq!(got, per_epoch[i], "epoch {i} delta");
            sum += got;
        }
        assert_eq!(sum, c.get(), "deltas tile the full history");
    }
}

/// The registry must hold its cardinality bound under label floods:
/// series_count stays <= the cap, every rejected registration is
/// tallied, overflow handles are inert (no panic, no phantom series),
/// and already-admitted series keep working.
#[test]
fn label_cardinality_stays_bounded() {
    let cap = 32usize;
    let flood = 100u32;
    let registry = MetricsRegistry::with_capacity(cap);
    for i in 0..flood {
        let c = registry.counter("flood_total", Labels::new().engine("hamr").flowlet(i));
        c.inc(); // inert for the overflow handles
    }
    assert_eq!(registry.series_count(), cap);
    assert_eq!(registry.dropped_series(), flood as u64 - cap as u64);
    assert_eq!(registry.snapshot().counter_total("flood_total"), cap as u64);
    // Admitted series still accept both re-registration and traffic.
    let again = registry.counter("flood_total", Labels::new().engine("hamr").flowlet(0));
    assert!(again.enabled());
    again.add(9);
    assert_eq!(
        registry.snapshot().counter_total("flood_total"),
        cap as u64 + 9
    );
    // A kind clash neither replaces the series nor panics.
    let clash = registry.histogram("flood_total", Labels::new().engine("hamr").flowlet(0));
    clash.record_us(5);
    assert_eq!(
        registry.snapshot().counter_total("flood_total"),
        cap as u64 + 9
    );
}
