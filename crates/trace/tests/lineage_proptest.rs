//! Property test: span lineage reconstruction round-trips arbitrary
//! synthetic produce→defer→ship→deliver→fire chains. Whatever the
//! interleaving across nodes, `analyze` must recover every chain as
//! complete and keep the attribution partition conserved.

use hamr_trace::{analyze, EventKind, TaskKind, TraceEvent};
use proptest::prelude::*;

/// One synthetic bin chain, parameterized by generated knobs.
#[derive(Debug, Clone)]
struct Chain {
    src: u32,
    dst: u32,
    start_us: u64,
    /// Gap between emit and ship (0 = shipped immediately; >0 models a
    /// flow-control defer, with stall/resume events bracketing it).
    defer_us: u64,
    /// Network transit time between ship and ingress.
    net_us: u64,
    /// Queue wait between ingress and the consuming task's start.
    queue_us: u64,
    /// Consuming task's execution time.
    run_us: u64,
}

fn chain_strategy() -> impl Strategy<Value = Chain> {
    (
        (0u32..4, 0u32..4, 0u64..10_000),
        (0u64..500, 1u64..300, 0u64..200, 1u64..400),
    )
        .prop_map(
            |((src, dst, start_us), (defer_us, net_us, queue_us, run_us))| Chain {
                src,
                dst,
                start_us,
                defer_us,
                net_us,
                queue_us,
                run_us,
            },
        )
}

/// Render the chains into the event stream the engine would produce.
/// Span ids are 1-based chain indices; lane 0 everywhere.
fn synthesize(chains: &[Chain]) -> Vec<TraceEvent> {
    let mut events = Vec::new();
    for (i, c) in chains.iter().enumerate() {
        let span = (i + 1) as u64;
        let (flowlet, edge) = (0u32, 0u32);
        let t_emit = c.start_us;
        events.push(TraceEvent {
            t_us: t_emit,
            node: c.src,
            worker: 0,
            kind: EventKind::BinEmitted {
                flowlet,
                edge,
                dst: c.dst,
                span,
                records: 1,
            },
        });
        let t_ship = t_emit + c.defer_us;
        if c.defer_us > 0 {
            events.push(TraceEvent {
                t_us: t_emit,
                node: c.src,
                worker: 0,
                kind: EventKind::FlowControlStall {
                    flowlet,
                    edge,
                    dst: c.dst,
                    span,
                },
            });
            events.push(TraceEvent {
                t_us: t_ship,
                node: c.src,
                worker: 0,
                kind: EventKind::FlowControlResume {
                    flowlet,
                    edge,
                    dst: c.dst,
                    stalled_us: c.defer_us,
                    span,
                },
            });
        }
        events.push(TraceEvent {
            t_us: t_ship,
            node: c.src,
            worker: 0,
            kind: EventKind::BinShipped {
                flowlet,
                edge,
                dst: c.dst,
                records: 1,
                bytes: 64,
                span,
            },
        });
        let t_ingress = t_ship + c.net_us;
        events.push(TraceEvent {
            t_us: t_ingress,
            node: c.dst,
            worker: u32::MAX,
            kind: EventKind::BinIngress {
                flowlet: 1,
                edge,
                from: c.src,
                span,
            },
        });
        let t_start = t_ingress + c.queue_us;
        events.push(TraceEvent {
            t_us: t_start,
            node: c.dst,
            worker: 0,
            kind: EventKind::TaskStart {
                task: TaskKind::MapBin,
                flowlet: 1,
                span,
            },
        });
        events.push(TraceEvent {
            t_us: t_start + c.run_us,
            node: c.dst,
            worker: 0,
            kind: EventKind::TaskEnd {
                task: TaskKind::MapBin,
                flowlet: 1,
                records_in: 1,
                records_out: 0,
            },
        });
    }
    // RingSink::drain sorts by timestamp; match that contract.
    events.sort_by_key(|e| e.t_us);
    events
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every synthesized chain must round-trip: seen, complete, and the
    /// attribution buckets must partition lanes × wall exactly.
    #[test]
    fn lineage_roundtrip(chains in prop::collection::vec(chain_strategy(), 1..40)) {
        let events = synthesize(&chains);
        let report = analyze(&events, 0);
        prop_assert_eq!(report.spans_seen, chains.len() as u64);
        prop_assert_eq!(report.spans_complete, chains.len() as u64);
        let expected = report.lanes as u64 * report.wall_us;
        prop_assert_eq!(
            report.total.total(),
            expected,
            "buckets {:?} must sum to lanes*wall",
            report.total
        );
        // Stall accounting: the ranking's total equals the sum of the
        // deferred chains' waits.
        let want_stall: u64 = chains.iter().map(|c| c.defer_us).filter(|&d| d > 0).sum();
        let got_stall: u64 = report.stall_edges.iter().map(|s| s.stalled_us).sum();
        prop_assert_eq!(got_stall, want_stall);
    }

    /// Nested/overlapping tasks on one lane (a worker lane interleaving
    /// is impossible, but the sorted stream can tie-break arbitrarily)
    /// must never panic or break conservation.
    #[test]
    fn analyze_never_panics_on_shuffled_subsets(
        chains in prop::collection::vec(chain_strategy(), 1..20),
        keep in prop::collection::vec(any::<bool>(), 6*20),
    ) {
        let full = synthesize(&chains);
        let events: Vec<TraceEvent> = full
            .into_iter()
            .enumerate()
            .filter(|(i, _)| keep.get(*i).copied().unwrap_or(true))
            .map(|(_, e)| e)
            .collect();
        if events.is_empty() {
            return Ok(());
        }
        let report = analyze(&events, 0);
        let expected = report.lanes as u64 * report.wall_us;
        prop_assert_eq!(report.total.total(), expected);
        prop_assert!(report.spans_complete <= report.spans_seen);
    }
}
