//! Chrome trace-event JSON export.
//!
//! Produces the `{"traceEvents": [...]}` object-format document that
//! Perfetto (<https://ui.perfetto.dev>) and `chrome://tracing` load
//! directly. Mapping:
//!
//! * `pid` = cluster node, `tid` = worker lane;
//! * `TaskStart`/`TaskEnd` pairs become `"X"` (complete) slices with
//!   record counts in `args`;
//! * `FlowControlResume` synthesizes a retroactive `"X"` stall slice
//!   covering the time the bin sat in the deferred queue;
//! * `SpillStart`/`SpillEnd` pairs become `"X"` spill slices;
//! * everything else (`BinShipped`, `NetSend`, ...) becomes an `"i"`
//!   instant;
//! * `"M"` metadata events name processes and the synthetic lanes.

use crate::json::escape;
use crate::{EventKind, TimeSeries, TraceEvent, WORKER_DISK, WORKER_NET, WORKER_RUNTIME};
use std::collections::BTreeSet;
use std::collections::HashMap;
use std::fmt::Write as _;

fn lane_name(worker: u32) -> String {
    match worker {
        WORKER_RUNTIME => "runtime".to_string(),
        WORKER_NET => "net".to_string(),
        WORKER_DISK => "disk".to_string(),
        w => format!("worker {w}"),
    }
}

/// Perfetto sorts tids numerically; remap the sentinel lanes to small
/// negative-looking slots so "runtime/net/disk" group below workers
/// while keeping worker ids stable.
fn lane_tid(worker: u32) -> u64 {
    match worker {
        WORKER_RUNTIME => 1_000_000,
        WORKER_NET => 1_000_001,
        WORKER_DISK => 1_000_002,
        w => w as u64,
    }
}

struct Emitter {
    out: String,
    first: bool,
}

impl Emitter {
    fn new() -> Self {
        Emitter {
            out: String::from("{\"traceEvents\":[\n"),
            first: true,
        }
    }

    /// Append one pre-rendered event object body (without braces).
    fn push(&mut self, body: String) {
        if !self.first {
            self.out.push_str(",\n");
        }
        self.first = false;
        self.out.push('{');
        self.out.push_str(&body);
        self.out.push('}');
    }

    fn finish(mut self) -> String {
        self.out.push_str("\n]}\n");
        self.out
    }
}

fn complete_slice(
    name: &str,
    cat: &str,
    node: u32,
    worker: u32,
    ts_us: u64,
    dur_us: u64,
    args: &[(&str, u64)],
) -> String {
    let mut s = format!(
        "\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":{},\"dur\":{}",
        escape(name),
        escape(cat),
        node,
        lane_tid(worker),
        ts_us,
        dur_us,
    );
    push_args(&mut s, args);
    s
}

fn instant(
    name: &str,
    cat: &str,
    node: u32,
    worker: u32,
    ts_us: u64,
    args: &[(&str, u64)],
) -> String {
    let mut s = format!(
        "\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{},\"tid\":{},\"ts\":{}",
        escape(name),
        escape(cat),
        node,
        lane_tid(worker),
        ts_us,
    );
    push_args(&mut s, args);
    s
}

fn push_args(s: &mut String, args: &[(&str, u64)]) {
    if args.is_empty() {
        return;
    }
    s.push_str(",\"args\":{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "\"{}\":{}", escape(k), v);
    }
    s.push('}');
}

fn metadata(name: &str, node: u32, tid: Option<u64>, value: &str) -> String {
    let tid_part = tid.map(|t| format!(",\"tid\":{t}")).unwrap_or_default();
    format!(
        "\"name\":\"{}\",\"ph\":\"M\",\"pid\":{}{},\"args\":{{\"name\":\"{}\"}}",
        escape(name),
        node,
        tid_part,
        escape(value),
    )
}

/// Render `events` as a Chrome trace-event JSON document.
///
/// Events need not be sorted; they are sorted internally. Unpaired
/// `TaskStart`s (e.g. from a truncated ring buffer) are dropped;
/// unpaired `TaskEnd`s become instants so nothing is silently lost.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    render(events, None)
}

/// Like [`chrome_trace_json`], plus `"ph":"C"` counter tracks from a
/// sampled gauge [`TimeSeries`] — queue depths, window occupancy and
/// friends render as area charts alongside the task timeline.
pub fn chrome_trace_json_with_counters(events: &[TraceEvent], series: &TimeSeries) -> String {
    render(events, Some(series))
}

/// Synthetic pid for cluster-wide (non-per-node) counter tracks.
const CLUSTER_PID: u64 = 1_000_000;

fn render(events: &[TraceEvent], series: Option<&TimeSeries>) -> String {
    let mut evs: Vec<&TraceEvent> = events.iter().collect();
    evs.sort_by_key(|e| e.t_us);

    let mut em = Emitter::new();
    // Per-(node, worker) stack of open TaskStarts; per-(node, worker,
    // flowlet) open SpillStarts.
    type OpenTask = (u64, crate::TaskKind, u32);
    let mut task_stack: HashMap<(u32, u32), Vec<OpenTask>> = HashMap::new();
    let mut spill_open: HashMap<(u32, u32, u32), u64> = HashMap::new();
    let mut lanes_seen: BTreeSet<(u32, u32)> = BTreeSet::new();

    for ev in &evs {
        lanes_seen.insert((ev.node, ev.worker));
        match &ev.kind {
            EventKind::TaskStart { task, flowlet, .. } => {
                task_stack
                    .entry((ev.node, ev.worker))
                    .or_default()
                    .push((ev.t_us, *task, *flowlet));
            }
            EventKind::TaskEnd {
                task,
                flowlet,
                records_in,
                records_out,
            } => {
                let stack = task_stack.entry((ev.node, ev.worker)).or_default();
                // Pop the innermost matching start (tasks on one worker
                // nest; mismatches mean the ring dropped the start).
                let started = stack
                    .iter()
                    .rposition(|(_, t, f)| t == task && f == flowlet)
                    .map(|i| stack.remove(i).0);
                match started {
                    Some(ts) => em.push(complete_slice(
                        task.name(),
                        "task",
                        ev.node,
                        ev.worker,
                        ts,
                        ev.t_us.saturating_sub(ts),
                        &[
                            ("flowlet", *flowlet as u64),
                            ("records_in", *records_in),
                            ("records_out", *records_out),
                        ],
                    )),
                    None => em.push(instant(
                        task.name(),
                        "task",
                        ev.node,
                        ev.worker,
                        ev.t_us,
                        &[("flowlet", *flowlet as u64), ("records_out", *records_out)],
                    )),
                }
            }
            EventKind::FlowControlResume {
                flowlet,
                edge,
                dst,
                stalled_us,
                span,
            } => {
                em.push(complete_slice(
                    "flow-control stall",
                    "flow-control",
                    ev.node,
                    ev.worker,
                    ev.t_us.saturating_sub(*stalled_us),
                    *stalled_us,
                    &[
                        ("flowlet", *flowlet as u64),
                        ("edge", *edge as u64),
                        ("dst", *dst as u64),
                        ("span", *span),
                    ],
                ));
            }
            EventKind::FlowControlStall {
                flowlet,
                edge,
                dst,
                span,
            } => {
                em.push(instant(
                    "stall",
                    "flow-control",
                    ev.node,
                    ev.worker,
                    ev.t_us,
                    &[
                        ("flowlet", *flowlet as u64),
                        ("edge", *edge as u64),
                        ("dst", *dst as u64),
                        ("span", *span),
                    ],
                ));
            }
            EventKind::SpillStart { flowlet } => {
                spill_open.insert((ev.node, ev.worker, *flowlet), ev.t_us);
            }
            EventKind::SpillEnd { flowlet, bytes } => {
                let ts = spill_open
                    .remove(&(ev.node, ev.worker, *flowlet))
                    .unwrap_or(ev.t_us);
                em.push(complete_slice(
                    "spill",
                    "disk",
                    ev.node,
                    ev.worker,
                    ts,
                    ev.t_us.saturating_sub(ts),
                    &[("flowlet", *flowlet as u64), ("bytes", *bytes)],
                ));
            }
            EventKind::BinEmitted {
                flowlet,
                edge,
                dst,
                span,
                records,
            } => em.push(instant(
                "bin-emitted",
                "dataflow",
                ev.node,
                ev.worker,
                ev.t_us,
                &[
                    ("flowlet", *flowlet as u64),
                    ("edge", *edge as u64),
                    ("dst", *dst as u64),
                    ("span", *span),
                    ("records", *records as u64),
                ],
            )),
            EventKind::BinShipped {
                flowlet,
                edge,
                dst,
                records,
                bytes,
                span,
            } => em.push(instant(
                "bin-shipped",
                "dataflow",
                ev.node,
                ev.worker,
                ev.t_us,
                &[
                    ("flowlet", *flowlet as u64),
                    ("edge", *edge as u64),
                    ("dst", *dst as u64),
                    ("records", *records as u64),
                    ("bytes", *bytes),
                    ("span", *span),
                ],
            )),
            EventKind::BinIngress {
                flowlet,
                edge,
                from,
                span,
            } => em.push(instant(
                "bin-ingress",
                "dataflow",
                ev.node,
                ev.worker,
                ev.t_us,
                &[
                    ("flowlet", *flowlet as u64),
                    ("edge", *edge as u64),
                    ("from", *from as u64),
                    ("span", *span),
                ],
            )),
            EventKind::NetSend { to, bytes } => em.push(instant(
                "net-send",
                "net",
                ev.node,
                ev.worker,
                ev.t_us,
                &[("to", *to as u64), ("bytes", *bytes)],
            )),
            EventKind::NetDeliver { from, bytes } => em.push(instant(
                "net-deliver",
                "net",
                ev.node,
                ev.worker,
                ev.t_us,
                &[("from", *from as u64), ("bytes", *bytes)],
            )),
            EventKind::ReduceFire { flowlet, shards } => em.push(instant(
                "reduce-fire",
                "dataflow",
                ev.node,
                ev.worker,
                ev.t_us,
                &[("flowlet", *flowlet as u64), ("shards", *shards as u64)],
            )),
            EventKind::TaskStolen {
                thief,
                victim,
                flowlet,
            } => em.push(instant(
                "task-stolen",
                "sched",
                ev.node,
                ev.worker,
                ev.t_us,
                &[
                    ("thief", *thief as u64),
                    ("victim", *victim as u64),
                    ("flowlet", *flowlet as u64),
                ],
            )),
            EventKind::WorkerParked => {
                em.push(instant("parked", "sched", ev.node, ev.worker, ev.t_us, &[]))
            }
            EventKind::WorkerUnparked { parked_us } => {
                // Like FlowControlResume: synthesize the park interval
                // retroactively, since only the wake-up knows how long
                // the worker slept.
                em.push(complete_slice(
                    "parked",
                    "sched",
                    ev.node,
                    ev.worker,
                    ev.t_us.saturating_sub(*parked_us),
                    *parked_us,
                    &[],
                ));
            }
            EventKind::DiskRead { bytes } => em.push(instant(
                "disk-read",
                "disk",
                ev.node,
                ev.worker,
                ev.t_us,
                &[("bytes", *bytes)],
            )),
            EventKind::DiskWrite { bytes } => em.push(instant(
                "disk-write",
                "disk",
                ev.node,
                ev.worker,
                ev.t_us,
                &[("bytes", *bytes)],
            )),
            EventKind::Watchdog { class, epoch } => em.push(instant(
                &format!("watchdog-{}", class.name()),
                "watchdog",
                ev.node,
                ev.worker,
                ev.t_us,
                &[("epoch", *epoch)],
            )),
        }
    }

    // Sampled gauges become counter tracks on their owning node's
    // process (cluster-wide gauges on a synthetic "cluster" process).
    let mut cluster_counters = false;
    if let Some(series) = series {
        for sample in &series.samples {
            for (g, name) in series.names.iter().enumerate() {
                let value = sample.values.get(g).copied().unwrap_or(0);
                let node = series.nodes.get(g).copied().unwrap_or(u32::MAX);
                let pid = if node == u32::MAX {
                    cluster_counters = true;
                    CLUSTER_PID
                } else {
                    node as u64
                };
                em.push(format!(
                    "\"name\":\"{}\",\"ph\":\"C\",\"pid\":{},\"ts\":{},\"args\":{{\"value\":{}}}",
                    escape(name),
                    pid,
                    sample.t_us,
                    value,
                ));
            }
        }
    }

    // Name processes and lanes so the timeline is readable.
    let nodes: BTreeSet<u32> = lanes_seen.iter().map(|(n, _)| *n).collect();
    for node in nodes {
        em.push(metadata(
            "process_name",
            node,
            None,
            &format!("node {node}"),
        ));
    }
    if cluster_counters {
        em.push(format!(
            "\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{CLUSTER_PID},\
             \"args\":{{\"name\":\"cluster\"}}"
        ));
    }
    for (node, worker) in &lanes_seen {
        em.push(metadata(
            "thread_name",
            *node,
            Some(lane_tid(*worker)),
            &lane_name(*worker),
        ));
    }

    em.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Json};
    use crate::TaskKind;

    fn ev(t_us: u64, node: u32, worker: u32, kind: EventKind) -> TraceEvent {
        TraceEvent {
            t_us,
            node,
            worker,
            kind,
        }
    }

    fn events_of(doc: &str) -> Vec<Json> {
        let parsed = parse(doc).expect("exporter output is valid JSON");
        parsed
            .get("traceEvents")
            .expect("has traceEvents")
            .as_arr()
            .expect("traceEvents is an array")
            .to_vec()
    }

    #[test]
    fn task_pair_becomes_complete_slice() {
        let doc = chrome_trace_json(&[
            ev(
                100,
                0,
                1,
                EventKind::TaskStart {
                    task: TaskKind::MapBin,
                    flowlet: 2,
                    span: 0,
                },
            ),
            ev(
                350,
                0,
                1,
                EventKind::TaskEnd {
                    task: TaskKind::MapBin,
                    flowlet: 2,
                    records_in: 64,
                    records_out: 32,
                },
            ),
        ]);
        let evs = events_of(&doc);
        let slice = evs
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .expect("one X slice");
        assert_eq!(slice.get("name").unwrap().as_str(), Some("map-bin"));
        assert_eq!(slice.get("ts").unwrap().as_u64(), Some(100));
        assert_eq!(slice.get("dur").unwrap().as_u64(), Some(250));
        assert_eq!(slice.get("pid").unwrap().as_u64(), Some(0));
        assert_eq!(slice.get("tid").unwrap().as_u64(), Some(1));
        let args = slice.get("args").unwrap();
        assert_eq!(args.get("records_in").unwrap().as_u64(), Some(64));
        assert_eq!(args.get("records_out").unwrap().as_u64(), Some(32));
    }

    #[test]
    fn resume_synthesizes_retroactive_stall_slice() {
        let doc = chrome_trace_json(&[ev(
            5000,
            3,
            crate::WORKER_RUNTIME,
            EventKind::FlowControlResume {
                flowlet: 1,
                edge: 0,
                dst: 2,
                stalled_us: 1200,
                span: 0,
            },
        )]);
        let evs = events_of(&doc);
        let stall = evs
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("flow-control stall"))
            .expect("stall slice present");
        assert_eq!(stall.get("ts").unwrap().as_u64(), Some(3800));
        assert_eq!(stall.get("dur").unwrap().as_u64(), Some(1200));
    }

    #[test]
    fn unpaired_end_becomes_instant_not_panic() {
        let doc = chrome_trace_json(&[ev(
            10,
            0,
            0,
            EventKind::TaskEnd {
                task: TaskKind::FireReduce,
                flowlet: 0,
                records_in: 1,
                records_out: 1,
            },
        )]);
        let evs = events_of(&doc);
        assert!(evs
            .iter()
            .any(|e| e.get("ph").and_then(Json::as_str) == Some("i")
                && e.get("name").and_then(Json::as_str) == Some("fire-reduce")));
    }

    #[test]
    fn metadata_names_nodes_and_lanes() {
        let doc = chrome_trace_json(&[
            ev(1, 0, 0, EventKind::DiskRead { bytes: 4 }),
            ev(
                2,
                1,
                crate::WORKER_NET,
                EventKind::NetSend { to: 0, bytes: 9 },
            ),
        ]);
        let evs = events_of(&doc);
        let metas: Vec<&Json> = evs
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .collect();
        assert!(metas.iter().any(|m| {
            m.get("name").and_then(Json::as_str) == Some("process_name")
                && m.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    == Some("node 1")
        }));
        assert!(metas.iter().any(|m| {
            m.get("name").and_then(Json::as_str) == Some("thread_name")
                && m.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    == Some("net")
        }));
    }

    #[test]
    fn steal_and_park_events_round_trip() {
        let doc = chrome_trace_json(&[
            ev(
                100,
                0,
                1,
                EventKind::TaskStolen {
                    thief: 1,
                    victim: 0,
                    flowlet: 3,
                },
            ),
            ev(200, 0, 1, EventKind::WorkerParked),
            ev(1400, 0, 1, EventKind::WorkerUnparked { parked_us: 1200 }),
        ]);
        let evs = events_of(&doc);
        let steal = evs
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("task-stolen"))
            .expect("steal instant present");
        assert_eq!(steal.get("ph").unwrap().as_str(), Some("i"));
        let args = steal.get("args").unwrap();
        assert_eq!(args.get("thief").unwrap().as_u64(), Some(1));
        assert_eq!(args.get("victim").unwrap().as_u64(), Some(0));
        assert_eq!(args.get("flowlet").unwrap().as_u64(), Some(3));
        // The unpark synthesizes a retroactive park slice covering the
        // slept interval.
        let park = evs
            .iter()
            .find(|e| {
                e.get("name").and_then(Json::as_str) == Some("parked")
                    && e.get("ph").and_then(Json::as_str) == Some("X")
            })
            .expect("park slice present");
        assert_eq!(park.get("ts").unwrap().as_u64(), Some(200));
        assert_eq!(park.get("dur").unwrap().as_u64(), Some(1200));
    }

    #[test]
    fn nested_tasks_pair_innermost_first() {
        // fire-reduce wraps reduce-ingest on the same worker.
        let doc = chrome_trace_json(&[
            ev(
                0,
                0,
                0,
                EventKind::TaskStart {
                    task: TaskKind::FireReduce,
                    flowlet: 1,
                    span: 0,
                },
            ),
            ev(
                10,
                0,
                0,
                EventKind::TaskStart {
                    task: TaskKind::ReduceIngest,
                    flowlet: 1,
                    span: 0,
                },
            ),
            ev(
                20,
                0,
                0,
                EventKind::TaskEnd {
                    task: TaskKind::ReduceIngest,
                    flowlet: 1,
                    records_in: 5,
                    records_out: 5,
                },
            ),
            ev(
                40,
                0,
                0,
                EventKind::TaskEnd {
                    task: TaskKind::FireReduce,
                    flowlet: 1,
                    records_in: 5,
                    records_out: 1,
                },
            ),
        ]);
        let evs = events_of(&doc);
        let durs: Vec<(String, u64)> = evs
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .map(|e| {
                (
                    e.get("name").unwrap().as_str().unwrap().to_string(),
                    e.get("dur").unwrap().as_u64().unwrap(),
                )
            })
            .collect();
        assert!(durs.contains(&("reduce-ingest".to_string(), 10)));
        assert!(durs.contains(&("fire-reduce".to_string(), 40)));
    }
}
