//! A tiny JSON parser, enough to validate and inspect the Chrome-trace
//! output in tests without pulling in serde. Supports the full JSON
//! grammar minus exotic number forms (no hex, but scientific notation
//! works) and `\u` escapes limited to the BMP.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object field access; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse a complete JSON document. Trailing garbage is an error.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .bump()
                                .and_then(|c| (c as char).to_digit(16))
                                .ok_or("bad \\u escape")?;
                            code = code * 16 + d;
                        }
                        out.push(char::from_u32(code).ok_or("bad \\u codepoint")?);
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-decode the UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let len = match b {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let end = (start + len).min(self.bytes.len());
                    let s =
                        std::str::from_utf8(&self.bytes[start..end]).map_err(|e| e.to_string())?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(items)),
                other => return Err(format!("expected ',' or ']', got {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(map)),
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }
}

/// Escape `s` for inclusion inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse(" 42 ").unwrap(), Json::Num(42.0));
        assert_eq!(parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structure() {
        let v = parse(r#"{"a": [1, {"b": "x"}], "c": null}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Json::Null));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].get("b").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_syntax() {
        assert!(parse("{} x").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line\nbreak \"quoted\" back\\slash\ttab \u{1}ctrl café";
        let doc = format!("\"{}\"", escape(original));
        assert_eq!(parse(&doc).unwrap(), Json::Str(original.into()));
    }

    #[test]
    fn unicode_escape() {
        assert_eq!(parse("\"\\u0041\"").unwrap(), Json::Str("A".into()));
    }
}
