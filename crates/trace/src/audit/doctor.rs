//! Post-mortem flight recorder and the `doctor` diagnosis it feeds.
//!
//! When the watchdog trips or a supervised job fails, the cluster dumps
//! a bounded black-box snapshot — the last-K trace events, the custody
//! ledger, and every live gauge — to `doctor_<job>.json`. The analysis
//! lives here (not in the `tracedump` binary) so tests and other tools
//! can diagnose a record without shelling out.

use super::{AuditReport, AuditStage};
use crate::json::{self, escape, Json};
use crate::{EventKind, TraceEvent, WatchdogClass};

/// One sampled gauge at dump time: the raw registered name (e.g.
/// `node0/f2/queue_depth`), the owning node, and the value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeValue {
    pub name: String,
    pub node: u32,
    pub value: i64,
}

/// A trace event flattened for the black box: the structured
/// [`EventKind`] becomes a name plus numeric args, which is all the
/// doctor needs to print a tail and is stable to parse back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordedEvent {
    pub t_us: u64,
    pub node: u32,
    pub worker: u32,
    pub name: String,
    pub args: Vec<(String, u64)>,
}

impl RecordedEvent {
    /// Flatten a live [`TraceEvent`](crate::TraceEvent) into the
    /// recorded form. Keys are sorted so round-trips (JSON args parse
    /// back out of an ordered map; the journal's binary codec) are
    /// identities.
    pub fn from_event(ev: &crate::TraceEvent) -> RecordedEvent {
        let (name, args) = event_fields(&ev.kind);
        let mut args: Vec<(String, u64)> =
            args.into_iter().map(|(k, v)| (k.to_string(), v)).collect();
        args.sort();
        RecordedEvent {
            t_us: ev.t_us,
            node: ev.node,
            worker: ev.worker,
            name: name.to_string(),
            args,
        }
    }
}

/// Why the watchdog fired, as recorded in the black box.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchdogTrip {
    pub class: WatchdogClass,
    pub epoch: u64,
    pub detail: String,
}

/// The bounded post-mortem snapshot written to `doctor_<job>.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightRecord {
    pub job: String,
    pub engine: String,
    pub trip: Option<WatchdogTrip>,
    pub error: Option<String>,
    /// Last-K events from the trace ring, oldest first.
    pub events: Vec<RecordedEvent>,
    /// Events the trace ring overflowed and lost before capture — a
    /// nonzero value means `events` has gaps, which matters when a
    /// diagnosis hinges on an event being absent.
    pub dropped_events: u64,
    pub audit: AuditReport,
    pub gauges: Vec<GaugeValue>,
}

/// Flatten an [`EventKind`] into a stable name + numeric args.
pub fn event_fields(kind: &EventKind) -> (&'static str, Vec<(&'static str, u64)>) {
    match kind {
        EventKind::TaskStart { flowlet, span, .. } => (
            "task-start",
            vec![("flowlet", *flowlet as u64), ("span", *span)],
        ),
        EventKind::TaskEnd {
            flowlet,
            records_in,
            records_out,
            ..
        } => (
            "task-end",
            vec![
                ("flowlet", *flowlet as u64),
                ("records_in", *records_in),
                ("records_out", *records_out),
            ],
        ),
        EventKind::BinEmitted {
            flowlet,
            edge,
            dst,
            records,
            ..
        } => (
            "bin-emitted",
            vec![
                ("flowlet", *flowlet as u64),
                ("edge", *edge as u64),
                ("dst", *dst as u64),
                ("records", *records as u64),
            ],
        ),
        EventKind::BinShipped {
            flowlet,
            edge,
            dst,
            bytes,
            ..
        } => (
            "bin-shipped",
            vec![
                ("flowlet", *flowlet as u64),
                ("edge", *edge as u64),
                ("dst", *dst as u64),
                ("bytes", *bytes),
            ],
        ),
        EventKind::BinIngress {
            flowlet,
            edge,
            from,
            ..
        } => (
            "bin-ingress",
            vec![
                ("flowlet", *flowlet as u64),
                ("edge", *edge as u64),
                ("from", *from as u64),
            ],
        ),
        EventKind::FlowControlStall {
            flowlet, edge, dst, ..
        } => (
            "flow-stall",
            vec![
                ("flowlet", *flowlet as u64),
                ("edge", *edge as u64),
                ("dst", *dst as u64),
            ],
        ),
        EventKind::FlowControlResume {
            flowlet,
            edge,
            dst,
            stalled_us,
            ..
        } => (
            "flow-resume",
            vec![
                ("flowlet", *flowlet as u64),
                ("edge", *edge as u64),
                ("dst", *dst as u64),
                ("stalled_us", *stalled_us),
            ],
        ),
        EventKind::SpillStart { flowlet } => ("spill-start", vec![("flowlet", *flowlet as u64)]),
        EventKind::SpillEnd { flowlet, bytes } => (
            "spill-end",
            vec![("flowlet", *flowlet as u64), ("bytes", *bytes)],
        ),
        EventKind::NetSend { to, bytes } => {
            ("net-send", vec![("to", *to as u64), ("bytes", *bytes)])
        }
        EventKind::NetDeliver { from, bytes } => (
            "net-deliver",
            vec![("from", *from as u64), ("bytes", *bytes)],
        ),
        EventKind::ReduceFire { flowlet, shards } => (
            "reduce-fire",
            vec![("flowlet", *flowlet as u64), ("shards", *shards as u64)],
        ),
        EventKind::TaskStolen {
            thief,
            victim,
            flowlet,
        } => (
            "task-stolen",
            vec![
                ("thief", *thief as u64),
                ("victim", *victim as u64),
                ("flowlet", *flowlet as u64),
            ],
        ),
        EventKind::WorkerParked => ("worker-parked", vec![]),
        EventKind::WorkerUnparked { parked_us } => {
            ("worker-unparked", vec![("parked_us", *parked_us)])
        }
        EventKind::DiskRead { bytes } => ("disk-read", vec![("bytes", *bytes)]),
        EventKind::DiskWrite { bytes } => ("disk-write", vec![("bytes", *bytes)]),
        EventKind::Watchdog { class, epoch } => (
            match class {
                WatchdogClass::Backpressure => "watchdog-backpressure",
                WatchdogClass::Hang => "watchdog-hang",
                WatchdogClass::Straggler => "watchdog-straggler",
            },
            vec![("epoch", *epoch)],
        ),
    }
}

impl FlightRecord {
    /// Build a record from live run state, keeping only the newest
    /// `keep_last` trace events.
    #[allow(clippy::too_many_arguments)]
    pub fn capture(
        job: impl Into<String>,
        engine: impl Into<String>,
        trip: Option<WatchdogTrip>,
        error: Option<String>,
        events: &[TraceEvent],
        keep_last: usize,
        dropped_events: u64,
        audit: AuditReport,
        gauges: Vec<GaugeValue>,
    ) -> Self {
        let skip = events.len().saturating_sub(keep_last);
        FlightRecord {
            job: job.into(),
            engine: engine.into(),
            trip,
            error,
            events: events[skip..]
                .iter()
                .map(RecordedEvent::from_event)
                .collect(),
            dropped_events,
            audit,
            gauges,
        }
    }

    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"job\":\"{}\"", escape(&self.job)));
        out.push_str(&format!(",\"engine\":\"{}\"", escape(&self.engine)));
        match &self.trip {
            Some(t) => out.push_str(&format!(
                ",\"trip\":{{\"class\":\"{}\",\"epoch\":{},\"detail\":\"{}\"}}",
                t.class.name(),
                t.epoch,
                escape(&t.detail)
            )),
            None => out.push_str(",\"trip\":null"),
        }
        match &self.error {
            Some(e) => out.push_str(&format!(",\"error\":\"{}\"", escape(e))),
            None => out.push_str(",\"error\":null"),
        }
        out.push_str(",\"events\":[");
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"t_us\":{},\"node\":{},\"worker\":{},\"name\":\"{}\",\"args\":{{",
                ev.t_us,
                ev.node,
                ev.worker,
                escape(&ev.name)
            ));
            for (j, (k, v)) in ev.args.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":{}", escape(k), v));
            }
            out.push_str("}}");
        }
        out.push_str(&format!("],\"dropped_events\":{}", self.dropped_events));
        out.push_str(",\"audit\":");
        out.push_str(&self.audit.to_json());
        out.push_str(",\"gauges\":[");
        for (i, g) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"node\":{},\"value\":{}}}",
                escape(&g.name),
                g.node,
                g.value
            ));
        }
        out.push_str("]}");
        out
    }

    /// Parse a `doctor_<job>.json` document.
    pub fn parse(text: &str) -> Result<FlightRecord, String> {
        let v = json::parse(text)?;
        let s = |j: Option<&Json>, what: &str| {
            j.and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("flight record missing {what}"))
        };
        let trip = match v.get("trip") {
            None | Some(Json::Null) => None,
            Some(t) => {
                let class_name = s(t.get("class"), "trip.class")?;
                Some(WatchdogTrip {
                    class: WatchdogClass::from_name(&class_name)
                        .ok_or_else(|| format!("unknown watchdog class {class_name:?}"))?,
                    epoch: t
                        .get("epoch")
                        .and_then(Json::as_u64)
                        .ok_or("flight record missing trip.epoch")?,
                    detail: s(t.get("detail"), "trip.detail")?,
                })
            }
        };
        let error = match v.get("error") {
            None | Some(Json::Null) => None,
            Some(e) => Some(e.as_str().ok_or("error must be a string")?.to_string()),
        };
        let mut events = Vec::new();
        for ej in v
            .get("events")
            .and_then(Json::as_arr)
            .ok_or("flight record missing events")?
        {
            let mut args = Vec::new();
            if let Some(Json::Obj(m)) = ej.get("args") {
                for (k, val) in m {
                    args.push((
                        k.clone(),
                        val.as_u64().ok_or("event arg must be a non-negative int")?,
                    ));
                }
            }
            events.push(RecordedEvent {
                t_us: ej
                    .get("t_us")
                    .and_then(Json::as_u64)
                    .ok_or("event missing t_us")?,
                node: ej
                    .get("node")
                    .and_then(Json::as_u64)
                    .ok_or("event missing node")? as u32,
                worker: ej
                    .get("worker")
                    .and_then(Json::as_u64)
                    .ok_or("event missing worker")? as u32,
                name: s(ej.get("name"), "event name")?,
                args,
            });
        }
        let mut gauges = Vec::new();
        for gj in v
            .get("gauges")
            .and_then(Json::as_arr)
            .ok_or("flight record missing gauges")?
        {
            gauges.push(GaugeValue {
                name: s(gj.get("name"), "gauge name")?,
                node: gj
                    .get("node")
                    .and_then(Json::as_u64)
                    .ok_or("gauge missing node")? as u32,
                value: gj
                    .get("value")
                    .and_then(Json::as_f64)
                    .ok_or("gauge missing value")? as i64,
            });
        }
        Ok(FlightRecord {
            job: s(v.get("job"), "job")?,
            engine: s(v.get("engine"), "engine")?,
            trip,
            error,
            events,
            // Absent in records written before drop accounting existed.
            dropped_events: v.get("dropped_events").and_then(Json::as_u64).unwrap_or(0),
            audit: AuditReport::from_json(v.get("audit").ok_or("flight record missing audit")?)?,
            gauges,
        })
    }

    /// Ranked findings, most damning first. Each is one plain sentence.
    pub fn diagnose(&self) -> Vec<String> {
        let mut findings = Vec::new();
        if let Some(t) = &self.trip {
            findings.push(format!(
                "watchdog tripped at epoch {}: {} — {}",
                t.epoch,
                t.class.name(),
                t.detail
            ));
        }
        // Custody gaps: bins that entered an edge but never reached a
        // consuming task, ranked by gap size.
        for (row, gap) in self.audit.stuck_rows().into_iter().take(5) {
            let emit = row.stage(AuditStage::Emit);
            let ship = row.stage(AuditStage::Ship);
            let deliver = row.stage(AuditStage::Deliver);
            let consume = row.stage(AuditStage::Consume);
            let stuck_at = if emit.bins > ship.bins {
                "stuck in flow control (emitted, never shipped)"
            } else if ship.bins > deliver.bins {
                "lost in the fabric (shipped, never delivered)"
            } else {
                "delivered but never consumed"
            };
            findings.push(format!(
                "edge {} -> node {}: {} of {} bins {} (emit={} ship={} deliver={} consume={})",
                row.edge,
                row.dst,
                gap,
                emit.bins,
                stuck_at,
                emit.bins,
                ship.bins,
                deliver.bins,
                consume.bins
            ));
        }
        if let Err(violations) = self.audit.check() {
            // Conservation failures not already covered by a stuck row
            // (e.g. a double-delivered bin: consume > emit).
            for v in violations
                .iter()
                .filter(|v| v.field == "bins" && v.stages.iter().any(|&s| s > v.stages[0]))
            {
                findings.push(format!("conservation violated: {v}"));
            }
        }
        // Gauge hot spots at dump time.
        for (suffix, what) in [
            ("deferred_bins", "bins deferred by flow control"),
            ("queue_depth", "bins queued for execution"),
            ("window_inflight", "unacked bins holding the window"),
        ] {
            if let Some((node, value)) = self
                .gauges
                .iter()
                .filter(|g| g.name.ends_with(suffix) && g.value > 0)
                .map(|g| (g.node, g.value))
                .max_by_key(|&(_, v)| v)
            {
                findings.push(format!("node {node} still holds {value} {what}"));
            }
        }
        if let Some(e) = &self.error {
            findings.push(format!("job error: {e}"));
        }
        if findings.len() == (self.trip.is_some() as usize) + (self.error.is_some() as usize) {
            findings.push(
                "no custody gap and no hot gauges: suspect completion signalling \
                 (a flowlet that never announced EdgeComplete)"
                    .to_string(),
            );
        }
        findings
    }

    /// The full human-readable doctor report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "doctor report: job {:?} ({} engine)\n",
            self.job, self.engine
        ));
        match (&self.trip, &self.error) {
            (None, None) => out.push_str("status: no trip, no error recorded\n"),
            (trip, error) => {
                if let Some(t) = trip {
                    out.push_str(&format!("trip: {} at epoch {}\n", t.class.name(), t.epoch));
                }
                if let Some(e) = error {
                    out.push_str(&format!("error: {e}\n"));
                }
            }
        }
        out.push_str("\ndiagnosis (ranked):\n");
        for (i, finding) in self.diagnose().iter().enumerate() {
            out.push_str(&format!("  {}. {}\n", i + 1, finding));
        }
        out.push('\n');
        out.push_str(&self.audit.render());
        let hot: Vec<&GaugeValue> = self.gauges.iter().filter(|g| g.value != 0).collect();
        if !hot.is_empty() {
            out.push_str("\nnon-zero gauges at dump time:\n");
            for g in hot {
                out.push_str(&format!("  {:<40} {}\n", g.name, g.value));
            }
        }
        if self.dropped_events > 0 {
            out.push_str(&format!(
                "\nWARNING: the trace ring overflowed and lost {} events; the event tail has gaps\n",
                self.dropped_events
            ));
        }
        if !self.events.is_empty() {
            out.push_str(&format!(
                "\nlast {} trace events (of the bounded black-box ring):\n",
                self.events.len().min(20)
            ));
            for ev in self
                .events
                .iter()
                .rev()
                .take(20)
                .collect::<Vec<_>>()
                .iter()
                .rev()
            {
                let args = ev
                    .args
                    .iter()
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect::<Vec<_>>()
                    .join(" ");
                out.push_str(&format!(
                    "  t={:<10} node {:<3} worker {:<10} {:<20} {}\n",
                    ev.t_us,
                    ev.node,
                    worker_label(ev.worker),
                    ev.name,
                    args
                ));
            }
        }
        out
    }
}

fn worker_label(worker: u32) -> String {
    match worker {
        crate::WORKER_RUNTIME => "runtime".to_string(),
        crate::WORKER_NET => "net".to_string(),
        crate::WORKER_DISK => "disk".to_string(),
        w => format!("w{w}"),
    }
}

#[cfg(test)]
mod tests {
    use super::super::{Audit, AuditStage};
    use super::*;

    fn sample_record() -> FlightRecord {
        let audit = Audit::new(2, 2);
        for stage in AuditStage::ALL {
            audit.record(stage, 0, 1, 8, 256);
        }
        // One bin delivered to node 1 on edge 1 but never consumed.
        audit.record(AuditStage::Emit, 1, 1, 4, 128);
        audit.record(AuditStage::Ship, 1, 1, 4, 128);
        audit.record(AuditStage::Deliver, 1, 1, 4, 128);
        let events = vec![
            TraceEvent {
                t_us: 10,
                node: 0,
                worker: 1,
                kind: EventKind::BinShipped {
                    flowlet: 1,
                    edge: 1,
                    dst: 1,
                    records: 4,
                    bytes: 128,
                    span: 7,
                },
            },
            TraceEvent {
                t_us: 20,
                node: 0,
                worker: crate::WORKER_RUNTIME,
                kind: EventKind::Watchdog {
                    class: WatchdogClass::Hang,
                    epoch: 6,
                },
            },
        ];
        FlightRecord::capture(
            "wordcount",
            "hamr",
            Some(WatchdogTrip {
                class: WatchdogClass::Hang,
                epoch: 6,
                detail: "no progress for 6 epochs".into(),
            }),
            Some("aborted by watchdog".into()),
            &events,
            64,
            3,
            audit.report(),
            vec![GaugeValue {
                name: "node1/f2/queue_depth".into(),
                node: 1,
                value: 1,
            }],
        )
    }

    #[test]
    fn flight_record_round_trips_through_json() {
        let record = sample_record();
        let parsed = FlightRecord::parse(&record.to_json()).expect("parse back");
        assert_eq!(parsed, record);
    }

    #[test]
    fn diagnosis_names_the_stuck_edge_first_after_the_trip() {
        let record = sample_record();
        let findings = record.diagnose();
        assert!(findings[0].contains("hang"), "{findings:?}");
        assert!(
            findings[1].contains("edge 1 -> node 1") && findings[1].contains("never consumed"),
            "{findings:?}"
        );
        let rendered = record.render();
        assert!(rendered.contains("diagnosis (ranked):"));
        assert!(rendered.contains("watchdog-hang"), "event tail rendered");
    }

    #[test]
    fn capture_keeps_only_the_newest_events() {
        let events: Vec<TraceEvent> = (0..100)
            .map(|i| TraceEvent {
                t_us: i,
                node: 0,
                worker: 0,
                kind: EventKind::DiskRead { bytes: i },
            })
            .collect();
        let record = FlightRecord::capture(
            "j",
            "hamr",
            None,
            None,
            &events,
            16,
            0,
            Audit::disabled().report(),
            Vec::new(),
        );
        assert_eq!(record.events.len(), 16);
        assert_eq!(record.events[0].t_us, 84, "oldest kept event");
        assert_eq!(record.events.last().unwrap().t_us, 99);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FlightRecord::parse("not json").is_err());
        assert!(FlightRecord::parse("{}").is_err());
        assert!(FlightRecord::parse("{\"job\":\"x\"}").is_err());
    }

    #[test]
    fn clean_record_diagnosis_points_at_completion_signalling() {
        let record = FlightRecord::capture(
            "clean",
            "hamr",
            None,
            None,
            &[],
            8,
            0,
            Audit::new(1, 1).report(),
            Vec::new(),
        );
        let findings = record.diagnose();
        assert_eq!(findings.len(), 1);
        assert!(
            findings[0].contains("completion signalling"),
            "{findings:?}"
        );
    }
}
