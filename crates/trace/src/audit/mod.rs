//! Bin custody audit ledger.
//!
//! Every bin that moves through the engine passes four custody points:
//! it is *emitted* by a producing task (`TaskOutput::close_bin`),
//! *shipped* onto the fabric by flow control, *delivered* by the
//! simulated network, and *consumed* by the ingress fire on the
//! destination node. The ledger tallies bins, records and payload bytes
//! per `(edge, dst)` at each stage with lock-free relaxed atomics, and
//! [`AuditReport::check`] proves conservation at job end: whatever was
//! emitted was shipped, delivered and consumed, nothing lost and
//! nothing double-counted.
//!
//! Re-emission is handled explicitly: a partial-reduce or reduce fire
//! that produces new bins is a fresh *emit* on the downstream edge, so
//! each edge's ledger row balances independently. Spilled reduce state
//! never leaves the node and does not touch the ledger.
//!
//! Like [`crate::Tracer`], the [`Audit`] handle is cheap to clone and a
//! disabled handle costs one branch per custody point.

mod doctor;

pub use doctor::{FlightRecord, GaugeValue, RecordedEvent, WatchdogTrip};

use crate::json::Json;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The four custody points a bin passes on its way between flowlets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditStage {
    /// A producing task closed the bin (`TaskOutput::close_bin`).
    Emit,
    /// Flow control handed the bin to the fabric (`ship_or_defer` /
    /// deferred-queue drain).
    Ship,
    /// The simulated network delivered the bin to its destination.
    Deliver,
    /// The destination runtime fired a consuming task for the bin.
    Consume,
}

impl AuditStage {
    pub const ALL: [AuditStage; 4] = [
        AuditStage::Emit,
        AuditStage::Ship,
        AuditStage::Deliver,
        AuditStage::Consume,
    ];

    pub fn name(self) -> &'static str {
        match self {
            AuditStage::Emit => "emit",
            AuditStage::Ship => "ship",
            AuditStage::Deliver => "deliver",
            AuditStage::Consume => "consume",
        }
    }

    fn index(self) -> usize {
        match self {
            AuditStage::Emit => 0,
            AuditStage::Ship => 1,
            AuditStage::Deliver => 2,
            AuditStage::Consume => 3,
        }
    }
}

/// What a network payload reports about the bin it carries, so the
/// fabric can tally the *deliver* custody point without knowing the
/// concrete message type. Non-bin traffic (acks, markers, completion
/// notices) reports nothing and stays out of the ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditBin {
    pub edge: u32,
    pub records: u64,
    pub bytes: u64,
}

const FIELDS: usize = 3; // bins, records, bytes
const COMBINE_FIELDS: usize = 2; // records in, records out

/// The shared counter table behind an enabled [`Audit`] handle.
struct Ledger {
    edges: u32,
    nodes: u32,
    /// `[stage][edge][dst][field]` flattened; every cell a relaxed
    /// atomic, so custody tallies never take a lock.
    cells: Vec<AtomicU64>,
    /// Per-edge combiner side-table: `[edge][records_in, records_out]`.
    /// In-node combining happens *before* the Emit custody point, so
    /// the four-stage rows still balance exactly; this table preserves
    /// the pre-combine count so nothing silently disappears — the only
    /// legal record loss is `records_out <= records_in` here.
    combine_cells: Vec<AtomicU64>,
}

impl Ledger {
    fn idx(&self, stage: AuditStage, edge: u32, dst: u32) -> usize {
        ((stage.index() * self.edges as usize + edge as usize) * self.nodes as usize + dst as usize)
            * FIELDS
    }
}

/// Cheap, cloneable custody-tally handle. Disabled by default; an
/// enabled handle shares one [`Ledger`] across every thread of a run.
#[derive(Clone, Default)]
pub struct Audit {
    inner: Option<Arc<Ledger>>,
}

impl Audit {
    /// An enabled ledger sized for `edges` dataflow edges across
    /// `nodes` cluster nodes (both floored at 1 so an edgeless graph
    /// still audits cleanly).
    pub fn new(edges: u32, nodes: u32) -> Self {
        let edges = edges.max(1);
        let nodes = nodes.max(1);
        let len = 4 * edges as usize * nodes as usize * FIELDS;
        Audit {
            inner: Some(Arc::new(Ledger {
                edges,
                nodes,
                cells: (0..len).map(|_| AtomicU64::new(0)).collect(),
                combine_cells: (0..edges as usize * COMBINE_FIELDS)
                    .map(|_| AtomicU64::new(0))
                    .collect(),
            })),
        }
    }

    /// A handle whose `record` is a single branch on `None`.
    pub fn disabled() -> Self {
        Audit { inner: None }
    }

    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Tally one bin with `records` records and `bytes` payload bytes
    /// passing custody point `stage` on `edge` toward node `dst`.
    #[inline]
    pub fn record(&self, stage: AuditStage, edge: u32, dst: u32, records: u64, bytes: u64) {
        if let Some(l) = &self.inner {
            debug_assert!(
                edge < l.edges && dst < l.nodes,
                "audit tally out of range: edge {edge}/{}, dst {dst}/{}",
                l.edges,
                l.nodes
            );
            if edge >= l.edges || dst >= l.nodes {
                return;
            }
            let i = l.idx(stage, edge, dst);
            l.cells[i].fetch_add(1, Ordering::Relaxed);
            l.cells[i + 1].fetch_add(records, Ordering::Relaxed);
            l.cells[i + 2].fetch_add(bytes, Ordering::Relaxed);
        }
    }

    /// Tally one combiner flush on `edge`: `records_in` pre-combine
    /// records collapsed into `records_out` partials.
    #[inline]
    pub fn combined(&self, edge: u32, records_in: u64, records_out: u64) {
        if let Some(l) = &self.inner {
            if edge >= l.edges {
                debug_assert!(false, "combine tally out of range: edge {edge}/{}", l.edges);
                return;
            }
            let i = edge as usize * COMBINE_FIELDS;
            l.combine_cells[i].fetch_add(records_in, Ordering::Relaxed);
            l.combine_cells[i + 1].fetch_add(records_out, Ordering::Relaxed);
        }
    }

    /// Total bins tallied at `stage` across all edges and nodes. The
    /// watchdog polls this per epoch to measure cluster progress.
    pub fn stage_bins(&self, stage: AuditStage) -> u64 {
        let Some(l) = &self.inner else { return 0 };
        let mut total = 0;
        for edge in 0..l.edges {
            for dst in 0..l.nodes {
                total += l.cells[l.idx(stage, edge, dst)].load(Ordering::Relaxed);
            }
        }
        total
    }

    /// Bins consumed per destination node (summed over edges) — the
    /// watchdog's per-node progress signal for straggler detection.
    pub fn consumed_bins_by_node(&self) -> Vec<u64> {
        let Some(l) = &self.inner else {
            return Vec::new();
        };
        let mut per_node = vec![0u64; l.nodes as usize];
        for edge in 0..l.edges {
            for dst in 0..l.nodes {
                per_node[dst as usize] +=
                    l.cells[l.idx(AuditStage::Consume, edge, dst)].load(Ordering::Relaxed);
            }
        }
        per_node
    }

    /// Snapshot the ledger into an owned report.
    pub fn report(&self) -> AuditReport {
        let Some(l) = &self.inner else {
            return AuditReport {
                edges: 0,
                nodes: 0,
                rows: Vec::new(),
                combines: Vec::new(),
            };
        };
        let mut rows = Vec::new();
        for edge in 0..l.edges {
            for dst in 0..l.nodes {
                let counts = AuditStage::ALL.map(|stage| {
                    let i = l.idx(stage, edge, dst);
                    StageCount {
                        bins: l.cells[i].load(Ordering::Relaxed),
                        records: l.cells[i + 1].load(Ordering::Relaxed),
                        bytes: l.cells[i + 2].load(Ordering::Relaxed),
                    }
                });
                if counts.iter().any(|c| c.bins | c.records | c.bytes != 0) {
                    rows.push(AuditRow { edge, dst, counts });
                }
            }
        }
        let mut combines = Vec::new();
        for edge in 0..l.edges {
            let i = edge as usize * COMBINE_FIELDS;
            let records_in = l.combine_cells[i].load(Ordering::Relaxed);
            let records_out = l.combine_cells[i + 1].load(Ordering::Relaxed);
            if records_in | records_out != 0 {
                combines.push(CombineRow {
                    edge,
                    records_in,
                    records_out,
                });
            }
        }
        AuditReport {
            edges: l.edges,
            nodes: l.nodes,
            rows,
            combines,
        }
    }
}

impl fmt::Debug for Audit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Audit")
            .field("enabled", &self.enabled())
            .finish()
    }
}

/// Bins / records / bytes tallied at one stage of one `(edge, dst)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageCount {
    pub bins: u64,
    pub records: u64,
    pub bytes: u64,
}

/// One `(edge, dst)` ledger row, counts indexed by [`AuditStage`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditRow {
    pub edge: u32,
    pub dst: u32,
    pub counts: [StageCount; 4],
}

impl AuditRow {
    pub fn stage(&self, stage: AuditStage) -> StageCount {
        self.counts[stage.index()]
    }

    fn balanced(&self) -> bool {
        self.counts.iter().all(|c| *c == self.counts[0])
    }
}

/// Pre/post-combine record custody for one edge's in-node combiners.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CombineRow {
    pub edge: u32,
    /// Raw records offered to the edge's combine buffers.
    pub records_in: u64,
    /// Partials the buffers flushed into the emit path.
    pub records_out: u64,
}

/// A conservation failure on one `(edge, dst)` row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditViolation {
    pub edge: u32,
    pub dst: u32,
    /// Which quantity leaked: `"bins"`, `"records"`, `"bytes"`, or
    /// `"combined"` for a combiner that emitted more than it consumed.
    pub field: &'static str,
    /// The four stage values for that quantity, emit→consume order.
    /// For `"combined"` the first two entries are records in/out.
    pub stages: [u64; 4],
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.field == "combined" {
            return write!(
                f,
                "edge {}: combiner emitted more than it consumed: in={} out={}",
                self.edge, self.stages[0], self.stages[1]
            );
        }
        write!(
            f,
            "edge {} -> node {}: {} emit={} ship={} deliver={} consume={}",
            self.edge,
            self.dst,
            self.field,
            self.stages[0],
            self.stages[1],
            self.stages[2],
            self.stages[3]
        )
    }
}

/// An owned snapshot of the ledger, checkable and serializable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditReport {
    pub edges: u32,
    pub nodes: u32,
    pub rows: Vec<AuditRow>,
    /// Per-edge combiner custody (empty unless combiners ran).
    pub combines: Vec<CombineRow>,
}

impl AuditReport {
    /// Prove conservation: every row must show identical bins, records
    /// and bytes at all four custody points.
    pub fn check(&self) -> Result<(), Vec<AuditViolation>> {
        let mut violations = Vec::new();
        for row in &self.rows {
            for (fi, field) in ["bins", "records", "bytes"].into_iter().enumerate() {
                let stages = [
                    [
                        row.counts[0].bins,
                        row.counts[1].bins,
                        row.counts[2].bins,
                        row.counts[3].bins,
                    ],
                    [
                        row.counts[0].records,
                        row.counts[1].records,
                        row.counts[2].records,
                        row.counts[3].records,
                    ],
                    [
                        row.counts[0].bytes,
                        row.counts[1].bytes,
                        row.counts[2].bytes,
                        row.counts[3].bytes,
                    ],
                ][fi];
                if stages.iter().any(|&v| v != stages[0]) {
                    violations.push(AuditViolation {
                        edge: row.edge,
                        dst: row.dst,
                        field,
                        stages,
                    });
                }
            }
        }
        for c in &self.combines {
            // A combiner may only shrink its input; growing it means
            // records were minted out of thin air.
            if c.records_out > c.records_in {
                violations.push(AuditViolation {
                    edge: c.edge,
                    dst: 0,
                    field: "combined",
                    stages: [c.records_in, c.records_out, 0, 0],
                });
            }
        }
        if violations.is_empty() {
            Ok(())
        } else {
            Err(violations)
        }
    }

    /// Sum one stage across every row.
    pub fn total(&self, stage: AuditStage) -> StageCount {
        let mut t = StageCount::default();
        for row in &self.rows {
            let c = row.stage(stage);
            t.bins += c.bins;
            t.records += c.records;
            t.bytes += c.bytes;
        }
        t
    }

    /// Rows where bins went missing between ship and consume, ranked by
    /// the size of the gap — the "stuck edge" candidates a diagnosis
    /// leads with.
    pub fn stuck_rows(&self) -> Vec<(&AuditRow, u64)> {
        let mut stuck: Vec<(&AuditRow, u64)> = self
            .rows
            .iter()
            .filter_map(|row| {
                let gap = row
                    .stage(AuditStage::Emit)
                    .bins
                    .saturating_sub(row.stage(AuditStage::Consume).bins);
                (gap > 0).then_some((row, gap))
            })
            .collect();
        stuck.sort_by_key(|(_, gap)| std::cmp::Reverse(*gap));
        stuck
    }

    /// Plain-text ledger table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("bin custody ledger (bins/records/kbytes per stage)\n");
        out.push_str(&format!(
            "{:>5} {:>5}  {:>20} {:>20} {:>20} {:>20}  status\n",
            "edge", "dst", "emit", "ship", "deliver", "consume"
        ));
        for row in &self.rows {
            let cell = |c: StageCount| format!("{}/{}/{}", c.bins, c.records, c.bytes / 1024);
            out.push_str(&format!(
                "{:>5} {:>5}  {:>20} {:>20} {:>20} {:>20}  {}\n",
                row.edge,
                row.dst,
                cell(row.stage(AuditStage::Emit)),
                cell(row.stage(AuditStage::Ship)),
                cell(row.stage(AuditStage::Deliver)),
                cell(row.stage(AuditStage::Consume)),
                if row.balanced() { "ok" } else { "LEAK" }
            ));
        }
        if self.rows.is_empty() {
            out.push_str("  (no bins moved)\n");
        }
        if !self.combines.is_empty() {
            out.push_str("combiner custody (pre-combine -> post-combine records per edge)\n");
            for c in &self.combines {
                let pct = if c.records_in > 0 {
                    100.0 * (1.0 - c.records_out as f64 / c.records_in as f64)
                } else {
                    0.0
                };
                out.push_str(&format!(
                    "{:>5}        {:>12} -> {:>12}  ({pct:.1}% absorbed)  {}\n",
                    c.edge,
                    c.records_in,
                    c.records_out,
                    if c.records_out <= c.records_in {
                        "ok"
                    } else {
                        "LEAK"
                    }
                ));
            }
        }
        out
    }

    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"edges\":{},\"nodes\":{},\"rows\":[",
            self.edges, self.nodes
        ));
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"edge\":{},\"dst\":{}", row.edge, row.dst));
            for stage in AuditStage::ALL {
                let c = row.stage(stage);
                out.push_str(&format!(
                    ",\"{}\":{{\"bins\":{},\"records\":{},\"bytes\":{}}}",
                    stage.name(),
                    c.bins,
                    c.records,
                    c.bytes
                ));
            }
            out.push('}');
        }
        out.push_str("],\"combines\":[");
        for (i, c) in self.combines.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"edge\":{},\"records_in\":{},\"records_out\":{}}}",
                c.edge, c.records_in, c.records_out
            ));
        }
        out.push_str("]}");
        out
    }

    /// Parse a report back out of its [`to_json`](Self::to_json) form.
    pub fn from_json(v: &Json) -> Result<AuditReport, String> {
        let u = |j: Option<&Json>, what: &str| {
            j.and_then(Json::as_u64)
                .ok_or_else(|| format!("audit report missing {what}"))
        };
        let mut rows = Vec::new();
        for rj in v
            .get("rows")
            .and_then(Json::as_arr)
            .ok_or("audit report missing rows")?
        {
            let mut counts = [StageCount::default(); 4];
            for stage in AuditStage::ALL {
                let c = rj
                    .get(stage.name())
                    .ok_or_else(|| format!("row missing stage {}", stage.name()))?;
                counts[stage.index()] = StageCount {
                    bins: u(c.get("bins"), "bins")?,
                    records: u(c.get("records"), "records")?,
                    bytes: u(c.get("bytes"), "bytes")?,
                };
            }
            rows.push(AuditRow {
                edge: u(rj.get("edge"), "edge")? as u32,
                dst: u(rj.get("dst"), "dst")? as u32,
                counts,
            });
        }
        // `combines` is absent from pre-skew flight-recorder dumps;
        // tolerate that rather than rejecting old doctor files.
        let mut combines = Vec::new();
        if let Some(arr) = v.get("combines").and_then(Json::as_arr) {
            for cj in arr {
                combines.push(CombineRow {
                    edge: u(cj.get("edge"), "edge")? as u32,
                    records_in: u(cj.get("records_in"), "records_in")?,
                    records_out: u(cj.get("records_out"), "records_out")?,
                });
            }
        }
        Ok(AuditReport {
            edges: u(v.get("edges"), "edges")? as u32,
            nodes: u(v.get("nodes"), "nodes")? as u32,
            rows,
            combines,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn move_bin(a: &Audit, edge: u32, dst: u32, records: u64, bytes: u64) {
        for stage in AuditStage::ALL {
            a.record(stage, edge, dst, records, bytes);
        }
    }

    #[test]
    fn disabled_audit_is_inert() {
        let a = Audit::disabled();
        assert!(!a.enabled());
        a.record(AuditStage::Emit, 0, 0, 10, 100);
        assert_eq!(a.stage_bins(AuditStage::Emit), 0);
        assert!(a.report().rows.is_empty());
        assert!(a.report().check().is_ok());
    }

    #[test]
    fn balanced_ledger_passes_check() {
        let a = Audit::new(2, 3);
        move_bin(&a, 0, 1, 5, 64);
        move_bin(&a, 0, 1, 7, 80);
        move_bin(&a, 1, 2, 3, 48);
        let report = a.report();
        assert!(report.check().is_ok(), "{:?}", report.check());
        assert_eq!(report.rows.len(), 2);
        assert_eq!(report.total(AuditStage::Emit).bins, 3);
        assert_eq!(report.total(AuditStage::Consume).records, 15);
        assert_eq!(a.stage_bins(AuditStage::Deliver), 3);
        assert_eq!(a.consumed_bins_by_node(), vec![0, 2, 1]);
    }

    #[test]
    fn lost_bin_is_a_violation_naming_the_edge() {
        let a = Audit::new(3, 2);
        move_bin(&a, 2, 1, 4, 32);
        // A bin that was emitted and shipped but never delivered.
        a.record(AuditStage::Emit, 2, 1, 9, 99);
        a.record(AuditStage::Ship, 2, 1, 9, 99);
        let report = a.report();
        let violations = report.check().unwrap_err();
        assert_eq!(violations.len(), 3, "bins, records and bytes all leak");
        assert!(violations.iter().all(|v| v.edge == 2 && v.dst == 1));
        let msg = violations[0].to_string();
        assert!(msg.contains("edge 2 -> node 1"), "{msg}");
        let stuck = report.stuck_rows();
        assert_eq!(stuck.len(), 1);
        assert_eq!(stuck[0].1, 1, "one bin stuck");
    }

    #[test]
    fn combine_side_table_tracks_in_ge_out() {
        let a = Audit::new(2, 2);
        a.combined(1, 1000, 12);
        a.combined(1, 500, 8);
        let report = a.report();
        assert!(report.check().is_ok());
        assert_eq!(
            report.combines,
            vec![CombineRow {
                edge: 1,
                records_in: 1500,
                records_out: 20
            }]
        );
        assert!(report.render().contains("combiner custody"));
    }

    #[test]
    fn combiner_minting_records_is_a_violation() {
        let a = Audit::new(1, 1);
        a.combined(0, 10, 11);
        let violations = a.report().check().unwrap_err();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].field, "combined");
        let msg = violations[0].to_string();
        assert!(msg.contains("in=10 out=11"), "{msg}");
    }

    #[test]
    fn old_reports_without_combines_still_parse() {
        let json = r#"{"edges":1,"nodes":1,"rows":[]}"#;
        let parsed = AuditReport::from_json(&json::parse(json).unwrap()).unwrap();
        assert!(parsed.combines.is_empty());
    }

    #[test]
    fn report_json_round_trips() {
        let a = Audit::new(2, 2);
        move_bin(&a, 0, 0, 11, 1024);
        move_bin(&a, 1, 1, 2, 17);
        a.record(AuditStage::Emit, 1, 0, 1, 1);
        a.combined(0, 64, 4);
        let report = a.report();
        let parsed =
            AuditReport::from_json(&json::parse(&report.to_json()).expect("valid json")).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn out_of_range_tallies_are_dropped_not_misfiled() {
        let a = Audit::new(1, 1);
        // debug_assert fires in debug builds; verify release semantics
        // via a direct check on the guard.
        if !cfg!(debug_assertions) {
            a.record(AuditStage::Emit, 5, 0, 1, 1);
            a.record(AuditStage::Emit, 0, 9, 1, 1);
            assert_eq!(a.stage_bins(AuditStage::Emit), 0);
        }
    }

    #[test]
    fn concurrent_tallies_conserve() {
        let a = Audit::new(1, 4);
        let threads: Vec<_> = (0..4u32)
            .map(|dst| {
                let a = a.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        move_bin(&a, 0, dst, 3, 10);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let report = a.report();
        assert!(report.check().is_ok());
        assert_eq!(report.total(AuditStage::Ship).bins, 4000);
        assert_eq!(report.total(AuditStage::Consume).records, 12000);
    }
}
