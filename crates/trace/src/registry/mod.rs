//! The unified metrics registry: one registration API for every
//! counter, gauge, and histogram either engine produces.
//!
//! Before this module, instrumentation was fragmented: `NodeMetrics` /
//! `JobMetrics` lived in core, `NetMetrics` in simnet, disk counters in
//! simdisk, and live [`Gauge`](crate::Gauge)s in [`crate::Telemetry`] —
//! each with its own ad-hoc export and none queryable while a job runs.
//! A [`MetricsRegistry`] absorbs all of them behind one API:
//!
//! * components register **labeled series** — a metric name plus a
//!   [`Labels`] set drawn from `(job, engine, node, flowlet, edge)` —
//!   and get back cheap atomic handles ([`Counter`], [`Gauge`],
//!   [`Histogram`]) they bump from the hot path;
//! * the registry can be **snapshotted at any time** (including
//!   mid-run) into a [`Snapshot`], rendered as Prometheus text for the
//!   embedded `/metrics` endpoint, or diffed against an earlier
//!   snapshot via [`Snapshot::delta`];
//! * **epoch snapshots** ([`MetricsRegistry::epoch_snapshot`]) give
//!   iterative workloads per-iteration deltas (shuffled bytes, records)
//!   out of the box: the cluster takes one at every job completion and
//!   [`MetricsRegistry::epoch_deltas`] subtracts neighbors;
//! * registration is **bounded**: past `max_series` distinct label
//!   sets, new registrations return inert handles and are tallied in a
//!   `registry_dropped_series_total` meta-counter instead of growing
//!   without limit.
//!
//! Registering the same `(name, labels)` twice returns handles sharing
//! one cell, so concurrent registration from many worker threads is
//! safe and idempotent.

pub mod alerts;
mod http;
mod snapshot;

pub use alerts::{AlertEngine, AlertEvent, AlertKind, AlertRule, AlertState};
pub use http::{http_get, HttpResponse, HttpServer, RouteHandler};
pub use snapshot::{parse_prometheus, HistSample, PromSample, SampleValue, SeriesSample, Snapshot};

use crate::hist::{bucket_of, HIST_BUCKETS};
use crate::telemetry::Gauge;
use crate::LatencyHistogram;
use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The label set every series carries. All dimensions are optional —
/// a cluster-wide counter has none, a per-flowlet task histogram has
/// `job` + `engine` + `flowlet`, a shuffle-edge counter adds `edge`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Labels {
    pub job: Option<String>,
    pub engine: Option<String>,
    pub node: Option<u32>,
    pub flowlet: Option<u32>,
    pub edge: Option<u32>,
}

impl Labels {
    pub fn new() -> Self {
        Labels::default()
    }

    pub fn job(mut self, job: impl Into<String>) -> Self {
        self.job = Some(job.into());
        self
    }

    pub fn engine(mut self, engine: impl Into<String>) -> Self {
        self.engine = Some(engine.into());
        self
    }

    pub fn node(mut self, node: u32) -> Self {
        self.node = Some(node);
        self
    }

    pub fn flowlet(mut self, flowlet: u32) -> Self {
        self.flowlet = Some(flowlet);
        self
    }

    pub fn edge(mut self, edge: u32) -> Self {
        self.edge = Some(edge);
        self
    }

    /// Label pairs in a fixed render order, escaped values.
    pub(crate) fn pairs(&self) -> Vec<(&'static str, String)> {
        let mut out = Vec::new();
        if let Some(job) = &self.job {
            out.push(("job", job.clone()));
        }
        if let Some(engine) = &self.engine {
            out.push(("engine", engine.clone()));
        }
        if let Some(node) = self.node {
            out.push(("node", node.to_string()));
        }
        if let Some(flowlet) = self.flowlet {
            out.push(("flowlet", flowlet.to_string()));
        }
        if let Some(edge) = self.edge {
            out.push(("edge", edge.to_string()));
        }
        out
    }
}

/// A monotonically increasing counter handle. Cloning shares the cell;
/// a disabled handle (registry full, or kind clash) ignores updates.
#[derive(Clone, Default)]
pub struct Counter {
    cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// A counter that ignores every update.
    pub fn disabled() -> Self {
        Counter { cell: None }
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, delta: u64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(delta, Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> u64 {
        self.cell
            .as_ref()
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    pub fn enabled(&self) -> bool {
        self.cell.is_some()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Counter({})", self.get())
    }
}

/// Shared atomic cells behind a [`Histogram`] handle: the same log2
/// bucket layout as [`LatencyHistogram`], updatable through `&self`
/// from many threads.
pub(crate) struct HistogramCells {
    pub(crate) buckets: [AtomicU64; HIST_BUCKETS],
    pub(crate) count: AtomicU64,
    pub(crate) sum: AtomicU64,
}

impl HistogramCells {
    fn new() -> Self {
        HistogramCells {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// A concurrently updatable log2 histogram handle.
#[derive(Clone, Default)]
pub struct Histogram {
    cells: Option<Arc<HistogramCells>>,
}

impl Histogram {
    /// A histogram that ignores every update.
    pub fn disabled() -> Self {
        Histogram { cells: None }
    }

    #[inline]
    pub fn record_us(&self, us: u64) {
        self.record(us);
    }

    /// Record one observation. The log2 buckets are unit-agnostic:
    /// microseconds for latency series, bytes for size series.
    #[inline]
    pub fn record(&self, value: u64) {
        if let Some(cells) = &self.cells {
            cells.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
            cells.count.fetch_add(1, Ordering::Relaxed);
            cells.sum.fetch_add(value, Ordering::Relaxed);
        }
    }

    /// Fold a completed [`LatencyHistogram`] into this series — how
    /// end-of-job per-flowlet latency distributions reach the registry.
    pub fn merge_from(&self, hist: &LatencyHistogram) {
        if let Some(cells) = &self.cells {
            for (b, n) in hist.bucket_counts().iter().enumerate() {
                if *n > 0 {
                    cells.buckets[b].fetch_add(*n, Ordering::Relaxed);
                }
            }
            cells.count.fetch_add(hist.count(), Ordering::Relaxed);
            cells.sum.fetch_add(hist.sum_us(), Ordering::Relaxed);
        }
    }

    pub fn count(&self) -> u64 {
        self.cells
            .as_ref()
            .map(|c| c.count.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    pub(crate) fn sample(cells: &HistogramCells) -> HistSample {
        HistSample {
            count: cells.count.load(Ordering::Relaxed),
            sum_us: cells.sum.load(Ordering::Relaxed),
            buckets: cells
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Histogram(count={})", self.count())
    }
}

enum Cell {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicI64>),
    Histogram(Arc<HistogramCells>),
}

struct Series {
    name: String,
    labels: Labels,
    cell: Cell,
}

#[derive(Default)]
struct SeriesMap {
    list: Vec<Series>,
    index: HashMap<(String, Labels), usize>,
}

struct RegistryInner {
    max_series: usize,
    series: Mutex<SeriesMap>,
    dropped_series: AtomicU64,
    epochs: Mutex<Vec<Snapshot>>,
}

/// Cheap, cloneable handle to the unified registry. See the module
/// docs for the full story.
#[derive(Clone)]
pub struct MetricsRegistry {
    inner: Arc<RegistryInner>,
}

/// Default bound on distinct series.
pub const DEFAULT_MAX_SERIES: usize = 4096;

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

impl MetricsRegistry {
    pub fn new() -> Self {
        MetricsRegistry::with_capacity(DEFAULT_MAX_SERIES)
    }

    /// A registry admitting at most `max_series` distinct
    /// `(name, labels)` series; registrations past the bound return
    /// inert handles and bump the `registry_dropped_series_total`
    /// meta-counter.
    pub fn with_capacity(max_series: usize) -> Self {
        MetricsRegistry {
            inner: Arc::new(RegistryInner {
                max_series,
                series: Mutex::new(SeriesMap::default()),
                dropped_series: AtomicU64::new(0),
                epochs: Mutex::new(Vec::new()),
            }),
        }
    }

    fn register<T>(
        &self,
        name: &str,
        labels: Labels,
        make: impl FnOnce() -> Cell,
        extract: impl Fn(&Cell) -> Option<T>,
    ) -> Option<T> {
        let mut map = self.inner.series.lock().unwrap_or_else(|p| p.into_inner());
        let key = (name.to_string(), labels.clone());
        if let Some(&i) = map.index.get(&key) {
            match extract(&map.list[i].cell) {
                Some(handle) => return Some(handle),
                None => {
                    // Same series name+labels registered as a different
                    // kind: a programming error, tallied not panicked.
                    self.inner.dropped_series.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
            }
        }
        if map.list.len() >= self.inner.max_series {
            self.inner.dropped_series.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let cell = make();
        let handle = extract(&cell);
        let slot = map.list.len();
        map.index.insert(key, slot);
        map.list.push(Series {
            name: name.to_string(),
            labels,
            cell,
        });
        handle
    }

    /// Register (or look up) a counter series.
    pub fn counter(&self, name: &str, labels: Labels) -> Counter {
        self.register(
            name,
            labels,
            || Cell::Counter(Arc::new(AtomicU64::new(0))),
            |cell| match cell {
                Cell::Counter(c) => Some(Counter {
                    cell: Some(Arc::clone(c)),
                }),
                _ => None,
            },
        )
        .unwrap_or_default()
    }

    /// Register (or look up) a gauge series. The handle is the same
    /// [`Gauge`] type [`crate::Telemetry`] hands out, so one cell can
    /// feed both the time-series sampler and the registry.
    pub fn gauge(&self, name: &str, labels: Labels) -> Gauge {
        self.register(
            name,
            labels,
            || Cell::Gauge(Arc::new(AtomicI64::new(0))),
            |cell| match cell {
                Cell::Gauge(c) => Some(Gauge::from_cell(Arc::clone(c))),
                _ => None,
            },
        )
        .unwrap_or_default()
    }

    /// Bind an *existing* gauge cell (e.g. one a [`crate::Telemetry`]
    /// already samples) into the registry under `name` + `labels`. If
    /// the series already exists its cell is replaced — a fresh run's
    /// live gauge supersedes the previous run's dead one.
    pub fn bind_gauge_cell(&self, name: &str, labels: Labels, cell: Arc<AtomicI64>) {
        let mut map = self.inner.series.lock().unwrap_or_else(|p| p.into_inner());
        let key = (name.to_string(), labels.clone());
        if let Some(&i) = map.index.get(&key) {
            if let Cell::Gauge(slot) = &mut map.list[i].cell {
                *slot = cell;
            } else {
                self.inner.dropped_series.fetch_add(1, Ordering::Relaxed);
            }
            return;
        }
        if map.list.len() >= self.inner.max_series {
            self.inner.dropped_series.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let slot = map.list.len();
        map.index.insert(key, slot);
        map.list.push(Series {
            name: name.to_string(),
            labels,
            cell: Cell::Gauge(cell),
        });
    }

    /// Register (or look up) a histogram series.
    pub fn histogram(&self, name: &str, labels: Labels) -> Histogram {
        self.register(
            name,
            labels,
            || Cell::Histogram(Arc::new(HistogramCells::new())),
            |cell| match cell {
                Cell::Histogram(c) => Some(Histogram {
                    cells: Some(Arc::clone(c)),
                }),
                _ => None,
            },
        )
        .unwrap_or_default()
    }

    /// Number of live series.
    pub fn series_count(&self) -> usize {
        self.inner
            .series
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .list
            .len()
    }

    /// Registrations refused by the cardinality bound (or by a kind
    /// clash on an existing series).
    pub fn dropped_series(&self) -> u64 {
        self.inner.dropped_series.load(Ordering::Relaxed)
    }

    /// Snapshot every series' current value. Safe to call at any time,
    /// including while jobs are running.
    pub fn snapshot(&self) -> Snapshot {
        self.snapshot_labeled("", 0)
    }

    fn snapshot_labeled(&self, label: &str, seq: u64) -> Snapshot {
        let map = self.inner.series.lock().unwrap_or_else(|p| p.into_inner());
        let mut series: Vec<SeriesSample> = map
            .list
            .iter()
            .map(|s| SeriesSample {
                name: s.name.clone(),
                labels: s.labels.clone(),
                value: match &s.cell {
                    Cell::Counter(c) => SampleValue::Counter(c.load(Ordering::Relaxed)),
                    Cell::Gauge(c) => SampleValue::Gauge(c.load(Ordering::Relaxed)),
                    Cell::Histogram(c) => SampleValue::Histogram(Histogram::sample(c)),
                },
            })
            .collect();
        drop(map);
        series.push(SeriesSample {
            name: "registry_dropped_series_total".into(),
            labels: Labels::new(),
            value: SampleValue::Counter(self.dropped_series()),
        });
        Snapshot {
            label: label.to_string(),
            seq,
            series,
        }
    }

    /// Take a snapshot and append it to the epoch log. The cluster
    /// calls this at every job completion; iterative workloads thereby
    /// get one epoch per iteration without doing anything.
    pub fn epoch_snapshot(&self, label: &str) -> Snapshot {
        let mut epochs = self.inner.epochs.lock().unwrap_or_else(|p| p.into_inner());
        let snap = self.snapshot_labeled(label, epochs.len() as u64);
        epochs.push(snap.clone());
        snap
    }

    /// The recorded epoch snapshots, oldest first.
    pub fn epochs(&self) -> Vec<Snapshot> {
        self.inner
            .epochs
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// Per-epoch deltas: epoch `i` minus epoch `i-1` (the first epoch
    /// is measured against zero). Counter and histogram series
    /// subtract; gauges keep their epoch-end value.
    pub fn epoch_deltas(&self) -> Vec<Snapshot> {
        let epochs = self.epochs();
        let mut out = Vec::with_capacity(epochs.len());
        for (i, snap) in epochs.iter().enumerate() {
            match i {
                0 => out.push(snap.clone()),
                _ => out.push(snap.delta(&epochs[i - 1])),
            }
        }
        out
    }

    /// Drop all recorded epoch snapshots (the series themselves keep
    /// their values).
    pub fn clear_epochs(&self) {
        self.inner
            .epochs
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clear();
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("series", &self.series_count())
            .field("dropped", &self.dropped_series())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_shares_one_cell() {
        let r = MetricsRegistry::new();
        let labels = Labels::new().job("wc").engine("hamr").node(1);
        let a = r.counter("records_total", labels.clone());
        let b = r.counter("records_total", labels.clone());
        a.add(3);
        b.add(4);
        assert_eq!(a.get(), 7);
        assert_eq!(b.get(), 7);
        assert_eq!(r.series_count(), 1);
        // A different label set is a different series.
        let c = r.counter("records_total", Labels::new().node(2));
        c.inc();
        assert_eq!(a.get(), 7);
        assert_eq!(r.series_count(), 2);
    }

    #[test]
    fn kind_clash_returns_inert_handle() {
        let r = MetricsRegistry::new();
        let c = r.counter("x", Labels::new());
        c.inc();
        let g = r.gauge("x", Labels::new());
        g.set(99);
        assert_eq!(g.get(), 0, "clashing gauge is inert");
        assert_eq!(c.get(), 1, "original counter untouched");
        assert_eq!(r.dropped_series(), 1);
    }

    #[test]
    fn cardinality_bound_drops_new_series() {
        let r = MetricsRegistry::with_capacity(2);
        let a = r.counter("a", Labels::new());
        let _b = r.gauge("b", Labels::new());
        let c = r.counter("c", Labels::new());
        c.add(5);
        assert!(!c.enabled());
        assert_eq!(c.get(), 0);
        assert_eq!(r.series_count(), 2);
        assert_eq!(r.dropped_series(), 1);
        // Existing series still register fine at the bound.
        let a2 = r.counter("a", Labels::new());
        a2.inc();
        assert_eq!(a.get(), 1);
        // The meta-counter is visible in snapshots.
        let snap = r.snapshot();
        assert!(matches!(
            snap.get("registry_dropped_series_total", &Labels::new()),
            Some(SampleValue::Counter(1))
        ));
    }

    #[test]
    fn histogram_records_and_merges() {
        let r = MetricsRegistry::new();
        let h = r.histogram("task_latency_us", Labels::new().flowlet(1));
        h.record_us(100);
        h.record_us(3000);
        let mut lat = LatencyHistogram::new();
        lat.record_us(7);
        h.merge_from(&lat);
        assert_eq!(h.count(), 3);
        let snap = r.snapshot();
        match snap.get("task_latency_us", &Labels::new().flowlet(1)) {
            Some(SampleValue::Histogram(hs)) => {
                assert_eq!(hs.count, 3);
                assert_eq!(hs.sum_us, 3107);
                assert_eq!(hs.buckets.iter().sum::<u64>(), 3);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn epoch_deltas_subtract_neighbors() {
        let r = MetricsRegistry::new();
        let c = r.counter("shuffled_bytes_total", Labels::new().job("pr"));
        let g = r.gauge("depth", Labels::new());
        c.add(10);
        g.set(4);
        r.epoch_snapshot("iter0");
        c.add(25);
        g.set(2);
        r.epoch_snapshot("iter1");
        let deltas = r.epoch_deltas();
        assert_eq!(deltas.len(), 2);
        assert_eq!(deltas[0].counter_total("shuffled_bytes_total"), 10);
        assert_eq!(deltas[1].counter_total("shuffled_bytes_total"), 25);
        // Gauges pass through their epoch-end value.
        assert!(matches!(
            deltas[1].get("depth", &Labels::new()),
            Some(SampleValue::Gauge(2))
        ));
        assert_eq!(deltas[1].label, "iter1");
        r.clear_epochs();
        assert!(r.epochs().is_empty());
    }

    #[test]
    fn bound_gauge_cell_is_live_and_replaceable() {
        let r = MetricsRegistry::new();
        let cell = Arc::new(AtomicI64::new(11));
        r.bind_gauge_cell("queue_depth", Labels::new().node(0), Arc::clone(&cell));
        cell.store(13, Ordering::Relaxed);
        assert!(matches!(
            r.snapshot().get("queue_depth", &Labels::new().node(0)),
            Some(SampleValue::Gauge(13))
        ));
        // A new run's cell replaces the old one under the same key.
        let fresh = Arc::new(AtomicI64::new(-2));
        r.bind_gauge_cell("queue_depth", Labels::new().node(0), fresh);
        assert!(matches!(
            r.snapshot().get("queue_depth", &Labels::new().node(0)),
            Some(SampleValue::Gauge(-2))
        ));
        assert_eq!(r.series_count(), 1);
    }
}
