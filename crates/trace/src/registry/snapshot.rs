//! Point-in-time registry snapshots: deltas, Prometheus text
//! exposition, and a small parser for validating scraped output.

use super::Labels;
use crate::hist::bucket_upper;
use crate::telemetry::prometheus_label_escape;

/// A sampled histogram: total count, total sum (µs or bytes, per the
/// series' unit), and raw per-log2-bucket counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistSample {
    pub count: u64,
    pub sum_us: u64,
    pub buckets: Vec<u64>,
}

impl HistSample {
    fn delta(&self, prev: &HistSample) -> HistSample {
        HistSample {
            count: self.count.saturating_sub(prev.count),
            sum_us: self.sum_us.saturating_sub(prev.sum_us),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .map(|(i, b)| b.saturating_sub(prev.buckets.get(i).copied().unwrap_or(0)))
                .collect(),
        }
    }
}

/// One series' value at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SampleValue {
    Counter(u64),
    Gauge(i64),
    Histogram(HistSample),
}

/// One series in a snapshot: name, labels, value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeriesSample {
    pub name: String,
    pub labels: Labels,
    pub value: SampleValue,
}

/// Every registered series' value at one instant. Snapshots are plain
/// data: diffable ([`Snapshot::delta`]), renderable
/// ([`Snapshot::to_prometheus`]), and safe to hold across runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Free-form tag — the job name for epoch snapshots taken at job
    /// completion, empty for ad-hoc snapshots.
    pub label: String,
    /// Epoch sequence number (0 for ad-hoc snapshots).
    pub seq: u64,
    pub series: Vec<SeriesSample>,
}

impl Snapshot {
    /// Look up one series' value by exact name + labels.
    pub fn get(&self, name: &str, labels: &Labels) -> Option<&SampleValue> {
        self.series
            .iter()
            .find(|s| s.name == name && s.labels == *labels)
            .map(|s| &s.value)
    }

    /// Sum a counter across every label set carrying `name`.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.series
            .iter()
            .filter(|s| s.name == name)
            .filter_map(|s| match &s.value {
                SampleValue::Counter(v) => Some(*v),
                _ => None,
            })
            .sum()
    }

    /// This snapshot minus `prev`: counters and histograms subtract
    /// (saturating, so a restarted series reads as its current value
    /// rather than wrapping); gauges are instantaneous and pass
    /// through unchanged. Series absent from `prev` keep their value.
    pub fn delta(&self, prev: &Snapshot) -> Snapshot {
        let series = self
            .series
            .iter()
            .map(|s| {
                let value = match (&s.value, prev.get(&s.name, &s.labels)) {
                    (SampleValue::Counter(now), Some(SampleValue::Counter(before))) => {
                        SampleValue::Counter(now.saturating_sub(*before))
                    }
                    (SampleValue::Histogram(now), Some(SampleValue::Histogram(before))) => {
                        SampleValue::Histogram(now.delta(before))
                    }
                    (value, _) => value.clone(),
                };
                SeriesSample {
                    name: s.name.clone(),
                    labels: s.labels.clone(),
                    value,
                }
            })
            .collect();
        Snapshot {
            label: self.label.clone(),
            seq: self.seq,
            series,
        }
    }

    /// Render the snapshot in the Prometheus text exposition format.
    /// Every series gains a `hamr_` prefix; histograms expose
    /// cumulative `_bucket{le=...}` samples plus `_sum` and `_count`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        // The format wants all samples of one metric in a single
        // group, so walk distinct names in first-appearance order.
        let mut names: Vec<&str> = Vec::new();
        for s in &self.series {
            if !names.contains(&s.name.as_str()) {
                names.push(&s.name);
            }
        }
        for name in names {
            let group: Vec<&SeriesSample> = self.series.iter().filter(|s| s.name == name).collect();
            let metric = sanitize_metric_name(name);
            let kind = match group[0].value {
                SampleValue::Counter(_) => "counter",
                SampleValue::Gauge(_) => "gauge",
                SampleValue::Histogram(_) => "histogram",
            };
            out.push_str(&format!("# TYPE hamr_{metric} {kind}\n"));
            for s in group {
                let labels = render_labels(&s.labels, None);
                match &s.value {
                    SampleValue::Counter(v) => {
                        out.push_str(&format!("hamr_{metric}{labels} {v}\n"));
                    }
                    SampleValue::Gauge(v) => {
                        out.push_str(&format!("hamr_{metric}{labels} {v}\n"));
                    }
                    SampleValue::Histogram(h) => {
                        let mut cumulative = 0u64;
                        for (b, n) in h.buckets.iter().enumerate() {
                            if *n == 0 {
                                continue;
                            }
                            cumulative += n;
                            let le = if b + 1 >= h.buckets.len() {
                                "+Inf".to_string()
                            } else {
                                bucket_upper(b).to_string()
                            };
                            let labels = render_labels(&s.labels, Some(&le));
                            out.push_str(&format!("hamr_{metric}_bucket{labels} {cumulative}\n"));
                        }
                        let inf = render_labels(&s.labels, Some("+Inf"));
                        out.push_str(&format!("hamr_{metric}_bucket{inf} {}\n", h.count));
                        out.push_str(&format!("hamr_{metric}_sum{labels} {}\n", h.sum_us));
                        out.push_str(&format!("hamr_{metric}_count{labels} {}\n", h.count));
                    }
                }
            }
        }
        out
    }
}

fn sanitize_metric_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

fn render_labels(labels: &Labels, le: Option<&str>) -> String {
    let mut pairs: Vec<String> = labels
        .pairs()
        .into_iter()
        .map(|(k, v)| format!("{k}=\"{}\"", prometheus_label_escape(&v)))
        .collect();
    if let Some(le) = le {
        pairs.push(format!("le=\"{le}\""));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

/// One parsed sample line from a Prometheus text exposition.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    pub name: String,
    /// Label pairs in source order, values unescaped.
    pub labels: Vec<(String, String)>,
    pub value: f64,
}

impl PromSample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Parse a Prometheus text exposition into samples, rejecting
/// malformed lines. This is the validator the HTTP integration tests
/// and the `--metrics-out` CI scrape run against `/metrics` output.
pub fn parse_prometheus(text: &str) -> Result<Vec<PromSample>, String> {
    let mut out = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if !(rest.starts_with("TYPE ") || rest.starts_with("HELP ") || rest.is_empty()) {
                return Err(format!("line {}: unknown comment form: {raw}", lineno + 1));
            }
            continue;
        }
        out.push(parse_sample_line(line).map_err(|e| format!("line {}: {e}: {raw}", lineno + 1))?);
    }
    Ok(out)
}

fn parse_sample_line(line: &str) -> Result<PromSample, String> {
    let (ident, value_str) = match line.find('{') {
        Some(open) => {
            let close = line.rfind('}').ok_or("unclosed label braces")?;
            if close < open {
                return Err("mismatched label braces".into());
            }
            (line[..close + 1].trim(), line[close + 1..].trim())
        }
        None => {
            let mut it = line.splitn(2, char::is_whitespace);
            let name = it.next().ok_or("empty line")?;
            (name, it.next().unwrap_or("").trim())
        }
    };
    let (name, labels) = match ident.find('{') {
        Some(open) => (
            &ident[..open],
            parse_labels(&ident[open + 1..ident.len() - 1])?,
        ),
        None => (ident, Vec::new()),
    };
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        || name.chars().next().is_some_and(|c| c.is_ascii_digit())
    {
        return Err(format!("invalid metric name {name:?}"));
    }
    let value: f64 = match value_str {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        v => v
            .split_whitespace()
            .next()
            .ok_or("missing value")?
            .parse()
            .map_err(|_| format!("bad value {value_str:?}"))?,
    };
    Ok(PromSample {
        name: name.to_string(),
        labels,
        value,
    })
}

fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    let mut rest = body.trim();
    while !rest.is_empty() {
        let eq = rest.find('=').ok_or("label missing '='")?;
        let key = rest[..eq].trim();
        if key.is_empty() {
            return Err("empty label name".into());
        }
        let after = rest[eq + 1..].trim_start();
        let mut chars = after.char_indices();
        if chars.next().map(|(_, c)| c) != Some('"') {
            return Err("label value not quoted".into());
        }
        let mut value = String::new();
        let mut end = None;
        let mut escaped = false;
        for (i, c) in chars {
            if escaped {
                match c {
                    'n' => value.push('\n'),
                    '\\' => value.push('\\'),
                    '"' => value.push('"'),
                    other => return Err(format!("bad escape \\{other}")),
                }
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                end = Some(i);
                break;
            } else {
                value.push(c);
            }
        }
        let end = end.ok_or("unterminated label value")?;
        out.push((key.to_string(), value));
        rest = after[end + 1..].trim_start();
        rest = rest.strip_prefix(',').unwrap_or(rest).trim_start();
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::super::{Labels, MetricsRegistry};
    use super::*;

    #[test]
    fn exposition_round_trips_through_parser() {
        let r = MetricsRegistry::new();
        r.counter(
            "shuffled_bytes_total",
            Labels::new().job("wc").engine("hamr").node(0),
        )
        .add(1234);
        r.gauge("queue_depth", Labels::new().node(1).flowlet(2))
            .set(-3);
        let h = r.histogram("task_latency_us", Labels::new().flowlet(0));
        h.record_us(5);
        h.record_us(900);
        let text = r.snapshot().to_prometheus();
        let samples = parse_prometheus(&text).expect("valid exposition");
        let counter = samples
            .iter()
            .find(|s| s.name == "hamr_shuffled_bytes_total")
            .expect("counter present");
        assert_eq!(counter.value, 1234.0);
        assert_eq!(counter.label("job"), Some("wc"));
        assert_eq!(counter.label("engine"), Some("hamr"));
        assert_eq!(counter.label("node"), Some("0"));
        let gauge = samples
            .iter()
            .find(|s| s.name == "hamr_queue_depth")
            .expect("gauge present");
        assert_eq!(gauge.value, -3.0);
        assert_eq!(gauge.label("flowlet"), Some("2"));
        // Histogram: +Inf bucket equals _count, buckets are cumulative.
        let inf = samples
            .iter()
            .find(|s| s.name == "hamr_task_latency_us_bucket" && s.label("le") == Some("+Inf"))
            .expect("+Inf bucket");
        assert_eq!(inf.value, 2.0);
        let count = samples
            .iter()
            .find(|s| s.name == "hamr_task_latency_us_count")
            .expect("_count");
        assert_eq!(count.value, 2.0);
        let sum = samples
            .iter()
            .find(|s| s.name == "hamr_task_latency_us_sum")
            .expect("_sum");
        assert_eq!(sum.value, 905.0);
        let mut bucket_values: Vec<f64> = samples
            .iter()
            .filter(|s| s.name == "hamr_task_latency_us_bucket")
            .map(|s| s.value)
            .collect();
        let sorted = {
            let mut v = bucket_values.clone();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v
        };
        assert_eq!(bucket_values, sorted, "cumulative buckets are monotone");
        bucket_values.dedup();
        assert!(!bucket_values.is_empty());
    }

    #[test]
    fn delta_subtracts_counters_and_histograms_only() {
        let r = MetricsRegistry::new();
        let c = r.counter("records_total", Labels::new());
        let g = r.gauge("inflight", Labels::new());
        let h = r.histogram("lat_us", Labels::new());
        c.add(10);
        g.set(7);
        h.record_us(100);
        let before = r.snapshot();
        c.add(5);
        g.set(3);
        h.record_us(200);
        h.record_us(300);
        let after = r.snapshot();
        let d = after.delta(&before);
        assert!(matches!(
            d.get("records_total", &Labels::new()),
            Some(SampleValue::Counter(5))
        ));
        assert!(matches!(
            d.get("inflight", &Labels::new()),
            Some(SampleValue::Gauge(3))
        ));
        match d.get("lat_us", &Labels::new()) {
            Some(SampleValue::Histogram(hs)) => {
                assert_eq!(hs.count, 2);
                assert_eq!(hs.sum_us, 500);
                assert_eq!(hs.buckets.iter().sum::<u64>(), 2);
            }
            other => panic!("expected histogram delta, got {other:?}"),
        }
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_prometheus("hamr_x 1\n").is_ok());
        assert!(parse_prometheus("1bad_name 1\n").is_err());
        assert!(parse_prometheus("hamr_x{node=\"0\" 1\n").is_err());
        assert!(parse_prometheus("hamr_x{node=0} 1\n").is_err());
        assert!(parse_prometheus("hamr_x{node=\"0\"} notanumber\n").is_err());
        assert!(parse_prometheus("<html>nope</html>\n").is_err());
        let esc = parse_prometheus("hamr_x{job=\"a\\\"b\\\\c\"} 2\n").expect("escapes");
        assert_eq!(esc[0].label("job"), Some("a\"b\\c"));
    }

    #[test]
    fn counter_total_sums_across_label_sets() {
        let r = MetricsRegistry::new();
        r.counter("net_bytes_total", Labels::new().node(0)).add(10);
        r.counter("net_bytes_total", Labels::new().node(1)).add(32);
        r.gauge("net_bytes_total_wannabe", Labels::new()).set(99);
        assert_eq!(r.snapshot().counter_total("net_bytes_total"), 42);
        assert_eq!(r.snapshot().counter_total("absent"), 0);
    }
}
