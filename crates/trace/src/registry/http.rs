//! Dependency-free embedded HTTP/1.1 server for the introspection
//! plane, plus the matching tiny client.
//!
//! One background thread accepts on a nonblocking loopback listener
//! and serves GET requests through a caller-supplied route handler.
//! The server exists to expose `/metrics`, `/healthz` and `/doctor`
//! while a job runs; it deliberately supports only what a scraper or
//! `curl` needs — GET, `Connection: close`, no keep-alive, no TLS —
//! and never touches the engine's hot path.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// What a route handler returns.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    pub status: u16,
    pub content_type: &'static str,
    pub body: String,
}

impl HttpResponse {
    pub fn ok(content_type: &'static str, body: impl Into<String>) -> Self {
        HttpResponse {
            status: 200,
            content_type,
            body: body.into(),
        }
    }

    pub fn text(body: impl Into<String>) -> Self {
        // The content type Prometheus scrapers expect.
        HttpResponse::ok("text/plain; version=0.0.4; charset=utf-8", body)
    }

    pub fn json(body: impl Into<String>) -> Self {
        HttpResponse::ok("application/json", body)
    }

    pub fn status(mut self, status: u16) -> Self {
        self.status = status;
        self
    }

    pub fn not_found() -> Self {
        HttpResponse {
            status: 404,
            content_type: "text/plain; charset=utf-8",
            body: "not found\n".into(),
        }
    }
}

fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

/// Maps a request path (query string stripped) to a response. Called
/// on the server thread; must not block for long.
pub type RouteHandler = Arc<dyn Fn(&str) -> HttpResponse + Send + Sync>;

/// The embedded listener. Dropping (or [`HttpServer::stop`]) shuts the
/// accept loop down within one poll interval.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(5);
/// Per-connection read/write budget: a stuck client cannot wedge the
/// accept loop forever.
const IO_TIMEOUT: Duration = Duration::from_millis(500);

impl HttpServer {
    /// Bind `127.0.0.1:port` (0 picks an ephemeral port) and start
    /// serving `handler` on a background thread.
    pub fn bind(port: u16, handler: RouteHandler) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("hamr-http".into())
            .spawn(move || {
                while !stop_flag.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            // Serve inline: requests are tiny and the
                            // handlers snapshot-and-render in memory.
                            let _ = serve_connection(stream, &handler);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(ACCEPT_POLL);
                        }
                        Err(_) => std::thread::sleep(ACCEPT_POLL),
                    }
                }
            })
            .expect("spawn http server thread");
        Ok(HttpServer {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the accept loop and join the thread.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for HttpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpServer")
            .field("addr", &self.addr)
            .finish()
    }
}

fn serve_connection(stream: TcpStream, handler: &RouteHandler) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers; nothing in them matters for GET-only serving.
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 || header.trim().is_empty() {
            break;
        }
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("");
    let response = if method != "GET" {
        HttpResponse {
            status: 405,
            content_type: "text/plain; charset=utf-8",
            body: "only GET is supported\n".into(),
        }
    } else if target.is_empty() {
        HttpResponse {
            status: 400,
            content_type: "text/plain; charset=utf-8",
            body: "bad request\n".into(),
        }
    } else {
        let path = target.split('?').next().unwrap_or("/");
        handler(path)
    };
    let mut stream = reader.into_inner();
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        status_reason(response.status),
        response.content_type,
        response.body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(response.body.as_bytes())?;
    stream.flush()
}

/// Minimal blocking GET against a loopback introspection endpoint.
/// Returns `(status, body)`. Used by `hamr top`, the CI scraper, and
/// the integration tests — and kept here so client and server agree on
/// the dialect.
pub fn http_get(addr: SocketAddr, path: &str, timeout: Duration) -> Result<(u16, String), String> {
    let stream =
        TcpStream::connect_timeout(&addr, timeout).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| e.to_string())?;
    stream
        .set_write_timeout(Some(timeout))
        .map_err(|e| e.to_string())?;
    let mut stream = stream;
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .map_err(|e| format!("send: {e}"))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("read: {e}"))?;
    let text = String::from_utf8_lossy(&raw);
    let mut sections = text.splitn(2, "\r\n\r\n");
    let head = sections.next().unwrap_or("");
    let body = sections.next().unwrap_or("").to_string();
    let status: u16 = head
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed response head: {head:?}"))?;
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_server() -> HttpServer {
        let handler: RouteHandler = Arc::new(|path| match path {
            "/metrics" => HttpResponse::text("hamr_up 1\n"),
            "/healthz" => HttpResponse::json("{\"status\":\"ok\"}"),
            _ => HttpResponse::not_found(),
        });
        HttpServer::bind(0, handler).expect("bind ephemeral port")
    }

    #[test]
    fn serves_routes_and_404s() {
        let server = test_server();
        let addr = server.addr();
        let t = Duration::from_secs(2);
        let (status, body) = http_get(addr, "/metrics", t).expect("GET /metrics");
        assert_eq!(status, 200);
        assert_eq!(body, "hamr_up 1\n");
        let (status, body) = http_get(addr, "/healthz", t).expect("GET /healthz");
        assert_eq!(status, 200);
        assert!(body.contains("ok"));
        let (status, _) = http_get(addr, "/nope", t).expect("GET /nope");
        assert_eq!(status, 404);
        // Query strings are stripped before routing.
        let (status, _) = http_get(addr, "/metrics?x=1", t).expect("GET with query");
        assert_eq!(status, 200);
    }

    #[test]
    fn rejects_non_get() {
        let server = test_server();
        let addr = server.addr();
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .expect("send");
        let mut out = Vec::new();
        stream.read_to_end(&mut out).expect("read");
        let text = String::from_utf8_lossy(&out);
        assert!(text.starts_with("HTTP/1.1 405"), "{text}");
    }

    #[test]
    fn stop_joins_the_thread() {
        let mut server = test_server();
        let addr = server.addr();
        server.stop();
        server.stop(); // idempotent
        assert!(http_get(addr, "/metrics", Duration::from_millis(200)).is_err());
    }
}
