//! Declarative alert rules evaluated over registry snapshots.
//!
//! An [`AlertEngine`] holds a set of [`AlertRule`]s and is fed
//! [`Snapshot`]s (typically once per watchdog epoch and once at job
//! completion). Each evaluation returns the *transitions* — a rule
//! that just started or just stopped firing — so callers can journal
//! and log them without deduplicating; the full current state is
//! always available from [`AlertEngine::states`] for the `/alerts`
//! endpoint.
//!
//! Three rule shapes cover the operator questions the live plane
//! could not answer over time:
//!
//! * [`AlertKind::GaugeHighWater`] — an instantaneous gauge (max
//!   across its label sets) has sat at or above a threshold for N
//!   consecutive evaluations. Queue depth, deferred bins.
//! * [`AlertKind::StallShareCeiling`] — the fraction of wall time the
//!   flow-control lanes spent stalled, measured between consecutive
//!   evaluations from the cumulative stall-time series, exceeded a
//!   ceiling for N evaluations.
//! * [`AlertKind::LatencySlo`] — a burn-rate SLO over a log2 latency
//!   histogram: the fraction of samples above the latency threshold,
//!   windowed short and long, both burning error budget faster than
//!   `burn_factor`. The two windows make it robust: the short window
//!   reacts fast, the long window keeps a transient spike from
//!   paging.

use super::snapshot::{SampleValue, Snapshot};
use crate::hist::bucket_upper;
use std::collections::VecDeque;

/// How one alert decides.
#[derive(Debug, Clone, PartialEq)]
pub enum AlertKind {
    /// Fires after the max of gauge `metric` across all label sets has
    /// been `>= threshold` for `hold_evals` consecutive evaluations;
    /// resolves on the first evaluation below.
    GaugeHighWater {
        metric: String,
        threshold: i64,
        hold_evals: u32,
    },
    /// Fires when `delta(stall)/ (delta(t) * lanes)` — the share of
    /// wall time spent stalled per flow-control lane — exceeds
    /// `ceiling` for `hold_evals` consecutive evaluations. `metric` is
    /// a cumulative microsecond series (gauge or counter); lanes =
    /// number of label sets carrying it.
    StallShareCeiling {
        metric: String,
        ceiling: f64,
        hold_evals: u32,
    },
    /// p-latency SLO with burn-rate windows over histogram `metric`
    /// (all label sets aggregated). A sample is *bad* when it lands in
    /// a bucket whose upper bound exceeds `threshold_us`. With error
    /// budget `1 - objective`, the rule fires when the bad fraction
    /// over BOTH the short and long windows exceeds
    /// `burn_factor * (1 - objective)`, and resolves when the short
    /// window drops back under.
    LatencySlo {
        metric: String,
        /// e.g. `0.99` — the fraction of samples that must be fast.
        objective: f64,
        threshold_us: u64,
        short_evals: usize,
        long_evals: usize,
        burn_factor: f64,
    },
}

/// A named rule.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertRule {
    pub name: String,
    pub kind: AlertKind,
}

impl AlertRule {
    pub fn gauge_high_water(
        name: impl Into<String>,
        metric: impl Into<String>,
        threshold: i64,
        hold_evals: u32,
    ) -> Self {
        AlertRule {
            name: name.into(),
            kind: AlertKind::GaugeHighWater {
                metric: metric.into(),
                threshold,
                hold_evals,
            },
        }
    }

    pub fn stall_share_ceiling(
        name: impl Into<String>,
        metric: impl Into<String>,
        ceiling: f64,
        hold_evals: u32,
    ) -> Self {
        AlertRule {
            name: name.into(),
            kind: AlertKind::StallShareCeiling {
                metric: metric.into(),
                ceiling,
                hold_evals,
            },
        }
    }

    pub fn latency_slo(
        name: impl Into<String>,
        metric: impl Into<String>,
        objective: f64,
        threshold_us: u64,
        short_evals: usize,
        long_evals: usize,
        burn_factor: f64,
    ) -> Self {
        AlertRule {
            name: name.into(),
            kind: AlertKind::LatencySlo {
                metric: metric.into(),
                objective,
                threshold_us,
                short_evals,
                long_evals,
                burn_factor,
            },
        }
    }
}

/// A transition: `firing = true` is a page, `false` a resolution.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertEvent {
    pub rule: String,
    pub firing: bool,
    pub t_us: u64,
    pub value: f64,
    pub threshold: f64,
    pub detail: String,
}

/// Queryable state of one rule, served at `/alerts`.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertState {
    pub rule: String,
    pub firing: bool,
    pub since_us: Option<u64>,
    pub last_value: f64,
    pub threshold: f64,
    /// Firing transitions over the engine's lifetime.
    pub fired_total: u64,
    pub detail: String,
}

/// Cumulative (total, bad) histogram counts at one evaluation.
#[derive(Debug, Clone, Copy)]
struct SloPoint {
    count: u64,
    bad: u64,
}

#[derive(Debug, Default)]
struct RuleState {
    consecutive: u32,
    firing: bool,
    since_us: Option<u64>,
    last_value: f64,
    fired_total: u64,
    detail: String,
    /// `StallShareCeiling`: previous `(t_us, cumulative stall)`.
    prev_stall: Option<(u64, u64)>,
    /// `LatencySlo`: cumulative points, newest last.
    slo_window: VecDeque<(u64, SloPoint)>,
}

/// The rule evaluator. Feed it snapshots; it hands back transitions.
#[derive(Debug, Default)]
pub struct AlertEngine {
    rules: Vec<(AlertRule, RuleState)>,
}

impl AlertEngine {
    pub fn new(rules: Vec<AlertRule>) -> Self {
        AlertEngine {
            rules: rules
                .into_iter()
                .map(|r| (r, RuleState::default()))
                .collect(),
        }
    }

    /// The stock rule set: queue-depth high-water, stall-share
    /// ceiling, and a p99 task-latency SLO with 2x burn-rate windows.
    /// Thresholds are conservative — a healthy benchmark run stays
    /// silent.
    pub fn with_default_rules() -> Self {
        AlertEngine::new(vec![
            AlertRule::gauge_high_water("queue-depth-high-water", "queue_depth", 4096, 5),
            AlertRule::stall_share_ceiling("stall-share-ceiling", "stall_us_total", 0.5, 3),
            AlertRule::latency_slo(
                "task-p99-latency-slo",
                "flowlet_task_latency_us",
                0.99,
                100_000,
                3,
                12,
                2.0,
            ),
        ])
    }

    /// Replace the rule set, resetting all state.
    pub fn set_rules(&mut self, rules: Vec<AlertRule>) {
        *self = AlertEngine::new(rules);
    }

    pub fn rules(&self) -> Vec<&AlertRule> {
        self.rules.iter().map(|(r, _)| r).collect()
    }

    pub fn firing_count(&self) -> usize {
        self.rules.iter().filter(|(_, s)| s.firing).count()
    }

    pub fn states(&self) -> Vec<AlertState> {
        self.rules
            .iter()
            .map(|(rule, s)| AlertState {
                rule: rule.name.clone(),
                firing: s.firing,
                since_us: s.since_us,
                last_value: s.last_value,
                threshold: rule_threshold(rule),
                fired_total: s.fired_total,
                detail: s.detail.clone(),
            })
            .collect()
    }

    /// Evaluate every rule against `snap` at time `t_us`, returning
    /// only the transitions.
    pub fn evaluate(&mut self, snap: &Snapshot, t_us: u64) -> Vec<AlertEvent> {
        let mut events = Vec::new();
        for (rule, state) in &mut self.rules {
            let decision = match &rule.kind {
                AlertKind::GaugeHighWater {
                    metric,
                    threshold,
                    hold_evals,
                } => eval_gauge(snap, metric, *threshold, *hold_evals, state),
                AlertKind::StallShareCeiling {
                    metric,
                    ceiling,
                    hold_evals,
                } => eval_stall_share(snap, metric, *ceiling, *hold_evals, state, t_us),
                AlertKind::LatencySlo {
                    metric,
                    objective,
                    threshold_us,
                    short_evals,
                    long_evals,
                    burn_factor,
                } => eval_latency_slo(
                    snap,
                    metric,
                    *objective,
                    *threshold_us,
                    *short_evals,
                    *long_evals,
                    *burn_factor,
                    state,
                    t_us,
                ),
            };
            let Some(should_fire) = decision else {
                continue; // no data this round; keep current state
            };
            if should_fire && !state.firing {
                state.firing = true;
                state.since_us = Some(t_us);
                state.fired_total += 1;
                events.push(AlertEvent {
                    rule: rule.name.clone(),
                    firing: true,
                    t_us,
                    value: state.last_value,
                    threshold: rule_threshold(rule),
                    detail: state.detail.clone(),
                });
            } else if !should_fire && state.firing {
                state.firing = false;
                state.since_us = None;
                events.push(AlertEvent {
                    rule: rule.name.clone(),
                    firing: false,
                    t_us,
                    value: state.last_value,
                    threshold: rule_threshold(rule),
                    detail: state.detail.clone(),
                });
            }
        }
        events
    }
}

fn rule_threshold(rule: &AlertRule) -> f64 {
    match &rule.kind {
        AlertKind::GaugeHighWater { threshold, .. } => *threshold as f64,
        AlertKind::StallShareCeiling { ceiling, .. } => *ceiling,
        AlertKind::LatencySlo {
            objective,
            burn_factor,
            ..
        } => burn_factor * (1.0 - objective),
    }
}

/// `Some(fire?)` once the rule has data; `None` keeps current state.
fn eval_gauge(
    snap: &Snapshot,
    metric: &str,
    threshold: i64,
    hold_evals: u32,
    state: &mut RuleState,
) -> Option<bool> {
    let max = snap
        .series
        .iter()
        .filter(|s| s.name == metric)
        .filter_map(|s| match &s.value {
            SampleValue::Gauge(v) => Some(*v),
            SampleValue::Counter(v) => Some(*v as i64),
            _ => None,
        })
        .max()?;
    state.last_value = max as f64;
    if max >= threshold {
        state.consecutive += 1;
        state.detail = format!(
            "{metric}={max} >= {threshold} for {} eval(s)",
            state.consecutive
        );
    } else {
        state.consecutive = 0;
        state.detail = format!("{metric}={max}");
    }
    Some(state.consecutive >= hold_evals)
}

fn eval_stall_share(
    snap: &Snapshot,
    metric: &str,
    ceiling: f64,
    hold_evals: u32,
    state: &mut RuleState,
    t_us: u64,
) -> Option<bool> {
    let mut lanes = 0u64;
    let mut total = 0u64;
    for s in &snap.series {
        if s.name != metric {
            continue;
        }
        let v = match &s.value {
            SampleValue::Gauge(v) => (*v).max(0) as u64,
            SampleValue::Counter(v) => *v,
            _ => continue,
        };
        lanes += 1;
        total += v;
    }
    if lanes == 0 {
        return None;
    }
    let Some((prev_t, prev_total)) = state.prev_stall.replace((t_us, total)) else {
        return None; // first observation establishes the baseline
    };
    let dt = t_us.saturating_sub(prev_t);
    if dt == 0 {
        return None;
    }
    let share = total.saturating_sub(prev_total) as f64 / (dt as f64 * lanes as f64);
    state.last_value = share;
    if share > ceiling {
        state.consecutive += 1;
        state.detail = format!(
            "stall share {share:.2} > {ceiling:.2} across {lanes} lane(s) for {} eval(s)",
            state.consecutive
        );
    } else {
        state.consecutive = 0;
        state.detail = format!("stall share {share:.2} across {lanes} lane(s)");
    }
    Some(state.consecutive >= hold_evals)
}

#[allow(clippy::too_many_arguments)]
fn eval_latency_slo(
    snap: &Snapshot,
    metric: &str,
    objective: f64,
    threshold_us: u64,
    short_evals: usize,
    long_evals: usize,
    burn_factor: f64,
    state: &mut RuleState,
    t_us: u64,
) -> Option<bool> {
    // Aggregate every label set of the histogram into cumulative
    // (total, bad-above-threshold) counts.
    let mut point = SloPoint { count: 0, bad: 0 };
    let mut seen = false;
    for s in &snap.series {
        if s.name != metric {
            continue;
        }
        if let SampleValue::Histogram(h) = &s.value {
            seen = true;
            point.count += h.count;
            for (b, &n) in h.buckets.iter().enumerate() {
                if bucket_upper(b) > threshold_us {
                    point.bad += n;
                }
            }
        }
    }
    if !seen {
        return None;
    }
    state.slo_window.push_back((t_us, point));
    while state.slo_window.len() > long_evals + 1 {
        state.slo_window.pop_front();
    }
    let budget = 1.0 - objective;
    let burn = |window: usize, state: &RuleState| -> Option<f64> {
        let n = state.slo_window.len();
        if n < 2 {
            return None;
        }
        let newest = state.slo_window[n - 1].1;
        let base = state.slo_window[n.saturating_sub(window + 1)].1;
        let d_count = newest.count.saturating_sub(base.count);
        if d_count == 0 {
            return Some(0.0);
        }
        let d_bad = newest.bad.saturating_sub(base.bad);
        Some((d_bad as f64 / d_count as f64) / budget)
    };
    let short = burn(short_evals, state)?;
    let long = burn(long_evals, state)?;
    state.last_value = short;
    let over = short >= burn_factor && long >= burn_factor;
    state.detail = format!(
        "p{} > {}us burn short {:.1}x / long {:.1}x (budget {:.3})",
        (objective * 100.0) as u32,
        threshold_us,
        short,
        long,
        budget
    );
    // Firing needs both windows hot; resolution needs the short
    // window back under the factor.
    if state.firing {
        Some(short >= burn_factor)
    } else {
        Some(over)
    }
}

#[cfg(test)]
mod tests {
    use super::super::snapshot::{HistSample, SeriesSample};
    use super::*;
    use crate::registry::Labels;

    fn gauge_snap(metric: &str, values: &[i64]) -> Snapshot {
        Snapshot {
            label: "t".into(),
            seq: 0,
            series: values
                .iter()
                .enumerate()
                .map(|(i, v)| SeriesSample {
                    name: metric.into(),
                    labels: Labels::new().node(i as u32),
                    value: SampleValue::Gauge(*v),
                })
                .collect(),
        }
    }

    fn hist_snap(metric: &str, fast: u64, slow: u64) -> Snapshot {
        let mut buckets = vec![0u64; 64];
        buckets[5] = fast; // upper 31us — always under threshold
        buckets[30] = slow; // upper ~1073s — always over
        Snapshot {
            label: "t".into(),
            seq: 0,
            series: vec![SeriesSample {
                name: metric.into(),
                labels: Labels::new().flowlet(0),
                value: SampleValue::Histogram(HistSample {
                    count: fast + slow,
                    sum_us: 0,
                    buckets,
                }),
            }],
        }
    }

    #[test]
    fn gauge_high_water_needs_the_hold_and_resolves_below() {
        let mut eng =
            AlertEngine::new(vec![AlertRule::gauge_high_water("q", "queue_depth", 10, 3)]);
        // Two evals over threshold: still silent (hold is 3).
        assert!(eng
            .evaluate(&gauge_snap("queue_depth", &[5, 12]), 100)
            .is_empty());
        assert!(eng
            .evaluate(&gauge_snap("queue_depth", &[5, 12]), 200)
            .is_empty());
        // Third: fires.
        let ev = eng.evaluate(&gauge_snap("queue_depth", &[5, 12]), 300);
        assert_eq!(ev.len(), 1);
        assert!(ev[0].firing);
        assert_eq!(ev[0].rule, "q");
        assert_eq!(ev[0].value, 12.0);
        // Still over: no duplicate transition.
        assert!(eng
            .evaluate(&gauge_snap("queue_depth", &[5, 12]), 400)
            .is_empty());
        assert_eq!(eng.firing_count(), 1);
        // Dip below: resolves immediately.
        let ev = eng.evaluate(&gauge_snap("queue_depth", &[5, 2]), 500);
        assert_eq!(ev.len(), 1);
        assert!(!ev[0].firing);
        assert_eq!(eng.firing_count(), 0);
        assert_eq!(eng.states()[0].fired_total, 1);
    }

    #[test]
    fn gauge_dip_resets_the_hold_counter() {
        let mut eng = AlertEngine::new(vec![AlertRule::gauge_high_water("q", "g", 10, 2)]);
        assert!(eng.evaluate(&gauge_snap("g", &[12]), 1).is_empty());
        assert!(eng.evaluate(&gauge_snap("g", &[3]), 2).is_empty());
        assert!(eng.evaluate(&gauge_snap("g", &[12]), 3).is_empty());
        let ev = eng.evaluate(&gauge_snap("g", &[12]), 4);
        assert_eq!(ev.len(), 1, "fires only after 2 consecutive");
    }

    #[test]
    fn missing_metric_keeps_state_untouched() {
        let mut eng = AlertEngine::new(vec![AlertRule::gauge_high_water("q", "absent", 1, 1)]);
        assert!(eng.evaluate(&gauge_snap("other", &[99]), 1).is_empty());
        assert_eq!(eng.firing_count(), 0);
    }

    #[test]
    fn stall_share_fires_on_sustained_stall_and_stays_quiet_when_idle() {
        let mut eng = AlertEngine::new(vec![AlertRule::stall_share_ceiling(
            "s",
            "stall_us_total",
            0.5,
            2,
        )]);
        // Cumulative stall across 2 lanes; evals 1000us apart. Share =
        // delta / (dt * lanes).
        let s = |a: i64, b: i64| gauge_snap("stall_us_total", &[a, b]);
        assert!(eng.evaluate(&s(0, 0), 0).is_empty(), "baseline");
        // 1600us of stall over 2000 lane-us: share 0.8 (1st over).
        assert!(eng.evaluate(&s(800, 800), 1000).is_empty());
        // Again: 2nd consecutive → fires.
        let ev = eng.evaluate(&s(1600, 1600), 2000);
        assert_eq!(ev.len(), 1);
        assert!(ev[0].firing);
        // Stall flatlines: share 0 → resolves.
        let ev = eng.evaluate(&s(1600, 1600), 3000);
        assert_eq!(ev.len(), 1);
        assert!(!ev[0].firing);
        // Healthy light stall never fires: share 0.1.
        assert!(eng.evaluate(&s(1700, 1700), 4000).is_empty());
        assert!(eng.evaluate(&s(1800, 1800), 5000).is_empty());
        assert_eq!(eng.firing_count(), 0);
    }

    #[test]
    fn latency_slo_fires_on_sustained_burn_and_not_on_a_blip() {
        let rule = AlertRule::latency_slo("slo", "lat", 0.99, 1000, 2, 4, 2.0);
        // Sustained badness: 10% of new samples slow each eval, budget
        // is 1% → burn 10x in both windows.
        let mut eng = AlertEngine::new(vec![rule.clone()]);
        let mut fired = false;
        for i in 1..=6u64 {
            let ev = eng.evaluate(&hist_snap("lat", 90 * i, 10 * i), i * 1000);
            if ev.iter().any(|e| e.firing) {
                fired = true;
            }
        }
        assert!(fired, "sustained 10x burn must fire");
        assert_eq!(eng.firing_count(), 1);

        // Healthy: all samples fast. Never fires.
        let mut eng = AlertEngine::new(vec![rule.clone()]);
        for i in 1..=6u64 {
            assert!(eng
                .evaluate(&hist_snap("lat", 100 * i, 0), i * 1000)
                .is_empty());
        }
        assert_eq!(eng.firing_count(), 0);

        // A short blip against a healthy history: the short window
        // burns hot (2x) but the long window dilutes it to 1x, so the
        // rule never pages.
        let mut eng = AlertEngine::new(vec![rule]);
        let mut transitions = Vec::new();
        for i in 1..=4u64 {
            transitions.extend(eng.evaluate(&hist_snap("lat", 100 * i, 0), i * 1000));
        }
        transitions.extend(eng.evaluate(&hist_snap("lat", 496, 4), 5000));
        for i in 6..=8u64 {
            transitions.extend(eng.evaluate(&hist_snap("lat", 100 * i - 4, 4), i * 1000));
        }
        assert!(
            transitions.iter().all(|e| !e.firing),
            "blip must not page: {transitions:?}"
        );
    }

    #[test]
    fn default_rules_stay_silent_on_an_empty_registry_snapshot() {
        let mut eng = AlertEngine::with_default_rules();
        let empty = Snapshot {
            label: "t".into(),
            seq: 0,
            series: Vec::new(),
        };
        for i in 0..10 {
            assert!(eng.evaluate(&empty, i * 100_000).is_empty());
        }
        assert_eq!(eng.firing_count(), 0);
        assert_eq!(eng.states().len(), 3);
    }
}
