//! The durable flight journal: an append-only, segmented, indexed
//! binary log that persists what the live introspection plane can only
//! show for an instant.
//!
//! The ring sinks drop old events, `/metrics` is a point-in-time
//! scrape, and the flight recorder dumps only on failure. The journal
//! closes that gap: a [`Journal`] continuously appends
//! [`JournalRecord`]s — job phase markers, trace events tapped from
//! the ring before overwrite, metrics epoch snapshots, audit-ledger
//! epochs, watchdog incidents, and alert firings — so a run can be
//! reconstructed offline (`hamr timeline <dir>`) even if the process
//! that wrote it is gone.
//!
//! ## Storage shape
//!
//! * **Records** are CRC-framed: `[len: u32 LE][crc32(payload): u32 LE]
//!   [payload]`, payload = one tag byte + a little-endian binary body.
//!   A torn write is detected by the CRC and treated as the end of the
//!   segment, never as garbage data.
//! * **Segments** (`seg-NNNNNN.hjs`) rotate once they exceed
//!   [`JournalConfig::segment_bytes`]; sealed segments are retained
//!   until the directory exceeds [`JournalConfig::max_total_bytes`],
//!   then the oldest is deleted — the journal is a bounded window, not
//!   an unbounded archive.
//! * The **index** (`index.hjt`) lists sealed segments with their
//!   record counts and byte sizes; it is rewritten atomically on every
//!   rotation and lets tools size a journal without scanning it.
//! * **Reopen** recovers the tail: the last segment is scanned frame
//!   by frame and truncated at the first corrupt or partial frame, so
//!   a crash mid-write costs at most the torn record.
//!
//! Journal files live on the host filesystem (a post-mortem must
//! survive the process, and the simulated disks retain bytes only in
//! RAM); sealed segments are optionally mirrored into a simdisk via
//! [`Journal::set_segment_mirror`] so journal IO is charged to the
//! disk model, and byte/record counts flow into the metrics registry
//! via [`Journal::set_metrics`].

pub mod timeline;

pub use timeline::{JobSpan, Timeline};

use crate::audit::RecordedEvent;
use crate::registry::{Counter, HistSample, Labels, SampleValue, SeriesSample, Snapshot};
use crate::stats::{EdgeStatsSummary, HopKind, LineageHop, LineageSample, StatsSnapshot, TopKey};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// `HAMR_JOURNAL` configuration: disabled, an auto-picked directory,
/// or an explicit one.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum JournalMode {
    /// No journal (the default — tests and benchmarks stay hermetic).
    #[default]
    Off,
    /// Journal into a unique subdirectory of `./hamr_journal`.
    Auto,
    /// Journal into this directory.
    Dir(PathBuf),
}

impl JournalMode {
    /// Parse `HAMR_JOURNAL=off|auto|<dir>` (unset means `Off`).
    pub fn from_env() -> Self {
        match std::env::var("HAMR_JOURNAL").as_deref() {
            Err(_) | Ok("off") | Ok("") => JournalMode::Off,
            Ok("auto") => JournalMode::Auto,
            Ok(dir) => JournalMode::Dir(PathBuf::from(dir)),
        }
    }
}

/// Where and how big. The defaults bound a journal at 16 MiB of
/// 256 KiB segments — roomy for a post-mortem window, small enough to
/// forget about.
#[derive(Debug, Clone)]
pub struct JournalConfig {
    pub dir: PathBuf,
    /// Rotate the open segment once it exceeds this many bytes.
    pub segment_bytes: u64,
    /// Delete the oldest sealed segment while the directory exceeds
    /// this byte budget. 0 disables retention.
    pub max_total_bytes: u64,
}

impl JournalConfig {
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        JournalConfig {
            dir: dir.into(),
            segment_bytes: 256 * 1024,
            max_total_bytes: 16 * 1024 * 1024,
        }
    }
}

/// One durable record. Everything the offline timeline needs to
/// reconstruct a run: phase markers, evicted trace events, metrics
/// epochs, custody epochs, incidents, and alert transitions.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// A job entered the cluster. `t_us` is on the journal's clock.
    JobStart {
        job: String,
        engine: String,
        t_us: u64,
    },
    /// The matching completion (ok or failed). A `JobStart` with no
    /// `JobEnd` is a run killed mid-flight.
    JobEnd {
        job: String,
        ok: bool,
        t_us: u64,
        elapsed_us: u64,
        shuffled_bytes: u64,
    },
    /// A trace event, flattened exactly as the flight recorder stores
    /// it — tapped from the ring sink before overwrite, or the ring
    /// tail of a failed run.
    Event(RecordedEvent),
    /// A metrics-registry epoch snapshot (one per completed job).
    Epoch(Snapshot),
    /// The audit ledger at a job boundary, as its canonical JSON.
    AuditEpoch { job: String, report_json: String },
    /// A watchdog-classified incident.
    Incident {
        job: String,
        class: String,
        epoch: u64,
        detail: String,
    },
    /// An alert rule fired (`firing = true`) or resolved.
    Alert {
        rule: String,
        firing: bool,
        t_us: u64,
        value: f64,
        threshold: f64,
        detail: String,
    },
    /// The data-plane statistics snapshot at a job boundary: merged
    /// per-edge sketches plus sampled record lineage.
    Stats(StatsSnapshot),
}

// --------------------------------------------------------------------------
// CRC32 (IEEE) — dependency-free, table generated at compile time.
// --------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

pub(crate) fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = (c >> 8) ^ CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize];
    }
    !c
}

// --------------------------------------------------------------------------
// Binary encoding
// --------------------------------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    off: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, off: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.off + n > self.buf.len() {
            return Err("record body truncated".into());
        }
        let s = &self.buf[self.off..self.off + n];
        self.off += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, String> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, String> {
        let n = self.u32()? as usize;
        if n > MAX_FRAME_BYTES as usize {
            return Err("string length out of range".into());
        }
        String::from_utf8(self.take(n)?.to_vec()).map_err(|_| "invalid utf-8".into())
    }
}

const TAG_JOB_START: u8 = 1;
const TAG_JOB_END: u8 = 2;
const TAG_EVENT: u8 = 3;
const TAG_EPOCH: u8 = 4;
const TAG_AUDIT: u8 = 5;
const TAG_INCIDENT: u8 = 6;
const TAG_ALERT: u8 = 7;
const TAG_STATS: u8 = 8;

/// Frames claiming to be larger than this are corruption, not data.
const MAX_FRAME_BYTES: u64 = 64 * 1024 * 1024;

fn encode_labels(buf: &mut Vec<u8>, l: &Labels) {
    let mut mask = 0u8;
    if l.job.is_some() {
        mask |= 1;
    }
    if l.engine.is_some() {
        mask |= 2;
    }
    if l.node.is_some() {
        mask |= 4;
    }
    if l.flowlet.is_some() {
        mask |= 8;
    }
    if l.edge.is_some() {
        mask |= 16;
    }
    buf.push(mask);
    if let Some(j) = &l.job {
        put_str(buf, j);
    }
    if let Some(e) = &l.engine {
        put_str(buf, e);
    }
    if let Some(n) = l.node {
        put_u32(buf, n);
    }
    if let Some(f) = l.flowlet {
        put_u32(buf, f);
    }
    if let Some(e) = l.edge {
        put_u32(buf, e);
    }
}

fn decode_labels(cur: &mut Cursor) -> Result<Labels, String> {
    let mask = cur.u8()?;
    let mut l = Labels::new();
    if mask & 1 != 0 {
        l.job = Some(cur.str()?);
    }
    if mask & 2 != 0 {
        l.engine = Some(cur.str()?);
    }
    if mask & 4 != 0 {
        l.node = Some(cur.u32()?);
    }
    if mask & 8 != 0 {
        l.flowlet = Some(cur.u32()?);
    }
    if mask & 16 != 0 {
        l.edge = Some(cur.u32()?);
    }
    Ok(l)
}

fn encode_snapshot(buf: &mut Vec<u8>, snap: &Snapshot) {
    put_str(buf, &snap.label);
    put_u64(buf, snap.seq);
    put_u32(buf, snap.series.len() as u32);
    for s in &snap.series {
        put_str(buf, &s.name);
        encode_labels(buf, &s.labels);
        match &s.value {
            SampleValue::Counter(v) => {
                buf.push(0);
                put_u64(buf, *v);
            }
            SampleValue::Gauge(v) => {
                buf.push(1);
                put_i64(buf, *v);
            }
            SampleValue::Histogram(h) => {
                buf.push(2);
                put_u64(buf, h.count);
                put_u64(buf, h.sum_us);
                put_u32(buf, h.buckets.len() as u32);
                for b in &h.buckets {
                    put_u64(buf, *b);
                }
            }
        }
    }
}

fn decode_snapshot(cur: &mut Cursor) -> Result<Snapshot, String> {
    let label = cur.str()?;
    let seq = cur.u64()?;
    let n = cur.u32()? as usize;
    let mut series = Vec::with_capacity(n.min(65_536));
    for _ in 0..n {
        let name = cur.str()?;
        let labels = decode_labels(cur)?;
        let value = match cur.u8()? {
            0 => SampleValue::Counter(cur.u64()?),
            1 => SampleValue::Gauge(cur.i64()?),
            2 => {
                let count = cur.u64()?;
                let sum_us = cur.u64()?;
                let nb = cur.u32()? as usize;
                if nb > 1024 {
                    return Err("histogram bucket count out of range".into());
                }
                let mut buckets = Vec::with_capacity(nb);
                for _ in 0..nb {
                    buckets.push(cur.u64()?);
                }
                SampleValue::Histogram(HistSample {
                    count,
                    sum_us,
                    buckets,
                })
            }
            other => return Err(format!("unknown sample kind {other}")),
        };
        series.push(SeriesSample {
            name,
            labels,
            value,
        });
    }
    Ok(Snapshot { label, seq, series })
}

fn put_bytes(buf: &mut Vec<u8>, b: &[u8]) {
    put_u32(buf, b.len() as u32);
    buf.extend_from_slice(b);
}

fn take_bytes(cur: &mut Cursor) -> Result<Vec<u8>, String> {
    let n = cur.u32()? as usize;
    if n > 4096 {
        return Err("byte-string length out of range".into());
    }
    Ok(cur.take(n)?.to_vec())
}

fn encode_stats(buf: &mut Vec<u8>, snap: &StatsSnapshot) {
    put_str(buf, &snap.job);
    put_str(buf, &snap.engine);
    put_u32(buf, snap.edges.len() as u32);
    for e in &snap.edges {
        put_u32(buf, e.edge);
        buf.push(u8::from(e.shuffle));
        put_u64(buf, e.records);
        put_u64(buf, e.bytes);
        put_u64(buf, e.distinct);
        put_u64(buf, e.hot_share.to_bits());
        put_u64(buf, e.p50);
        put_u64(buf, e.p90);
        put_u64(buf, e.p99);
        put_u32(buf, e.top.len() as u32);
        for t in &e.top {
            put_u64(buf, t.hash);
            put_u64(buf, t.count);
            put_u64(buf, t.err);
            put_bytes(buf, &t.key);
        }
    }
    put_u32(buf, snap.samples.len() as u32);
    for s in &snap.samples {
        put_u64(buf, s.hash);
        put_bytes(buf, &s.key);
        put_u32(buf, s.hops.len() as u32);
        for h in &s.hops {
            buf.push(h.kind.as_u8());
            put_u32(buf, h.flowlet);
            put_str(buf, &h.flowlet_name);
            put_u32(buf, h.edge);
            put_u32(buf, h.src);
            put_u32(buf, h.dst);
            put_u32(buf, h.records);
        }
    }
}

fn decode_stats(cur: &mut Cursor) -> Result<StatsSnapshot, String> {
    let job = cur.str()?;
    let engine = cur.str()?;
    let ne = cur.u32()? as usize;
    if ne > 65_536 {
        return Err("stats edge count out of range".into());
    }
    let mut edges = Vec::with_capacity(ne);
    for _ in 0..ne {
        let edge = cur.u32()?;
        let shuffle = cur.u8()? != 0;
        let records = cur.u64()?;
        let bytes = cur.u64()?;
        let distinct = cur.u64()?;
        let hot_share = f64::from_bits(cur.u64()?);
        let p50 = cur.u64()?;
        let p90 = cur.u64()?;
        let p99 = cur.u64()?;
        let nt = cur.u32()? as usize;
        if nt > 1024 {
            return Err("stats top-key count out of range".into());
        }
        let mut top = Vec::with_capacity(nt);
        for _ in 0..nt {
            top.push(TopKey {
                hash: cur.u64()?,
                count: cur.u64()?,
                err: cur.u64()?,
                key: take_bytes(cur)?,
            });
        }
        edges.push(EdgeStatsSummary {
            edge,
            shuffle,
            records,
            bytes,
            distinct,
            hot_share,
            top,
            p50,
            p90,
            p99,
        });
    }
    let ns = cur.u32()? as usize;
    if ns > 65_536 {
        return Err("stats sample count out of range".into());
    }
    let mut samples = Vec::with_capacity(ns);
    for _ in 0..ns {
        let hash = cur.u64()?;
        let key = take_bytes(cur)?;
        let nh = cur.u32()? as usize;
        if nh > 4096 {
            return Err("stats hop count out of range".into());
        }
        let mut hops = Vec::with_capacity(nh);
        for _ in 0..nh {
            let kind = HopKind::from_u8(cur.u8()?).ok_or("unknown lineage hop kind")?;
            hops.push(LineageHop {
                kind,
                flowlet: cur.u32()?,
                flowlet_name: cur.str()?,
                edge: cur.u32()?,
                src: cur.u32()?,
                dst: cur.u32()?,
                records: cur.u32()?,
            });
        }
        samples.push(LineageSample { hash, key, hops });
    }
    Ok(StatsSnapshot {
        job,
        engine,
        edges,
        samples,
    })
}

impl JournalRecord {
    fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64);
        match self {
            JournalRecord::JobStart { job, engine, t_us } => {
                buf.push(TAG_JOB_START);
                put_str(&mut buf, job);
                put_str(&mut buf, engine);
                put_u64(&mut buf, *t_us);
            }
            JournalRecord::JobEnd {
                job,
                ok,
                t_us,
                elapsed_us,
                shuffled_bytes,
            } => {
                buf.push(TAG_JOB_END);
                put_str(&mut buf, job);
                buf.push(u8::from(*ok));
                put_u64(&mut buf, *t_us);
                put_u64(&mut buf, *elapsed_us);
                put_u64(&mut buf, *shuffled_bytes);
            }
            JournalRecord::Event(ev) => {
                buf.push(TAG_EVENT);
                put_u64(&mut buf, ev.t_us);
                put_u32(&mut buf, ev.node);
                put_u32(&mut buf, ev.worker);
                put_str(&mut buf, &ev.name);
                put_u32(&mut buf, ev.args.len() as u32);
                for (k, v) in &ev.args {
                    put_str(&mut buf, k);
                    put_u64(&mut buf, *v);
                }
            }
            JournalRecord::Epoch(snap) => {
                buf.push(TAG_EPOCH);
                encode_snapshot(&mut buf, snap);
            }
            JournalRecord::AuditEpoch { job, report_json } => {
                buf.push(TAG_AUDIT);
                put_str(&mut buf, job);
                put_str(&mut buf, report_json);
            }
            JournalRecord::Incident {
                job,
                class,
                epoch,
                detail,
            } => {
                buf.push(TAG_INCIDENT);
                put_str(&mut buf, job);
                put_str(&mut buf, class);
                put_u64(&mut buf, *epoch);
                put_str(&mut buf, detail);
            }
            JournalRecord::Alert {
                rule,
                firing,
                t_us,
                value,
                threshold,
                detail,
            } => {
                buf.push(TAG_ALERT);
                put_str(&mut buf, rule);
                buf.push(u8::from(*firing));
                put_u64(&mut buf, *t_us);
                put_u64(&mut buf, value.to_bits());
                put_u64(&mut buf, threshold.to_bits());
                put_str(&mut buf, detail);
            }
            JournalRecord::Stats(snap) => {
                buf.push(TAG_STATS);
                encode_stats(&mut buf, snap);
            }
        }
        buf
    }

    fn decode(payload: &[u8]) -> Result<JournalRecord, String> {
        let mut cur = Cursor::new(payload);
        let rec = match cur.u8()? {
            TAG_JOB_START => JournalRecord::JobStart {
                job: cur.str()?,
                engine: cur.str()?,
                t_us: cur.u64()?,
            },
            TAG_JOB_END => JournalRecord::JobEnd {
                job: cur.str()?,
                ok: cur.u8()? != 0,
                t_us: cur.u64()?,
                elapsed_us: cur.u64()?,
                shuffled_bytes: cur.u64()?,
            },
            TAG_EVENT => {
                let t_us = cur.u64()?;
                let node = cur.u32()?;
                let worker = cur.u32()?;
                let name = cur.str()?;
                let n = cur.u32()? as usize;
                if n > 1024 {
                    return Err("event arg count out of range".into());
                }
                let mut args = Vec::with_capacity(n);
                for _ in 0..n {
                    let k = cur.str()?;
                    let v = cur.u64()?;
                    args.push((k, v));
                }
                JournalRecord::Event(RecordedEvent {
                    t_us,
                    node,
                    worker,
                    name,
                    args,
                })
            }
            TAG_EPOCH => JournalRecord::Epoch(decode_snapshot(&mut cur)?),
            TAG_AUDIT => JournalRecord::AuditEpoch {
                job: cur.str()?,
                report_json: cur.str()?,
            },
            TAG_INCIDENT => JournalRecord::Incident {
                job: cur.str()?,
                class: cur.str()?,
                epoch: cur.u64()?,
                detail: cur.str()?,
            },
            TAG_ALERT => JournalRecord::Alert {
                rule: cur.str()?,
                firing: cur.u8()? != 0,
                t_us: cur.u64()?,
                value: f64::from_bits(cur.u64()?),
                threshold: f64::from_bits(cur.u64()?),
                detail: cur.str()?,
            },
            TAG_STATS => JournalRecord::Stats(decode_stats(&mut cur)?),
            other => return Err(format!("unknown record tag {other}")),
        };
        Ok(rec)
    }
}

// --------------------------------------------------------------------------
// Writer
// --------------------------------------------------------------------------

fn segment_name(id: u64) -> String {
    format!("seg-{id:06}.hjs")
}

const INDEX_NAME: &str = "index.hjt";

#[derive(Debug, Clone)]
struct SegMeta {
    name: String,
    records: u64,
    bytes: u64,
}

struct WriterInner {
    cfg: JournalConfig,
    file: Option<BufWriter<File>>,
    seg_id: u64,
    seg_bytes: u64,
    seg_records: u64,
    /// In-memory copy of the open segment, handed to the segment
    /// mirror on seal (bounded by `segment_bytes`).
    seg_buf: Vec<u8>,
    sealed: Vec<SegMeta>,
}

type SegmentMirror = Box<dyn Fn(&str, &[u8]) + Send>;

/// The journal writer. Cheap to share (`Arc<Journal>`); `append` is
/// serialized internally. IO failures are counted, never fatal —
/// observability must not take a job down.
pub struct Journal {
    inner: Mutex<WriterInner>,
    epoch: Instant,
    bytes_total: AtomicU64,
    records_total: AtomicU64,
    io_errors: AtomicU64,
    mirror: Mutex<Option<SegmentMirror>>,
    metrics: Mutex<Option<(Counter, Counter)>>,
}

/// Sequence numbers for `JournalMode::Auto` subdirectories, so several
/// clusters in one process never share a writer.
static AUTO_SEQ: AtomicU64 = AtomicU64::new(0);

impl Journal {
    /// Resolve [`JournalMode::from_env`] into an opened journal
    /// (`None` when off). `Auto` picks a unique subdirectory of
    /// `./hamr_journal` per opened journal.
    pub fn from_env() -> std::io::Result<Option<Journal>> {
        match JournalMode::from_env() {
            JournalMode::Off => Ok(None),
            JournalMode::Auto => {
                let sub = format!(
                    "c{:04}-p{}",
                    AUTO_SEQ.fetch_add(1, Ordering::Relaxed),
                    std::process::id()
                );
                let dir = PathBuf::from("hamr_journal").join(sub);
                Journal::open(JournalConfig::new(dir)).map(Some)
            }
            JournalMode::Dir(dir) => Journal::open(JournalConfig::new(dir)).map(Some),
        }
    }

    /// Open (or create) a journal at `cfg.dir`, recovering any
    /// existing tail: the newest segment is scanned and truncated at
    /// the first corrupt or partial frame, then appending resumes.
    pub fn open(cfg: JournalConfig) -> std::io::Result<Journal> {
        std::fs::create_dir_all(&cfg.dir)?;
        let mut segs = list_segments(&cfg.dir)?;
        segs.sort();
        let mut sealed = Vec::new();
        let mut seg_id = 0u64;
        let mut open_file = None;
        let mut seg_bytes = 0u64;
        let mut seg_records = 0u64;
        let mut seg_buf = Vec::new();
        if let Some(last) = segs.last().cloned() {
            for name in &segs[..segs.len() - 1] {
                let path = cfg.dir.join(name);
                let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                let records = scan_segment(&path)
                    .map(|(r, _, _)| r.len() as u64)
                    .unwrap_or(0);
                sealed.push(SegMeta {
                    name: name.clone(),
                    records,
                    bytes,
                });
            }
            // Recover the tail segment: keep the valid prefix, truncate
            // the rest, and continue appending to it.
            let path = cfg.dir.join(&last);
            let (records, valid_bytes, data) = scan_segment(&path)?;
            if (data.len() as u64) > valid_bytes {
                let f = OpenOptions::new().write(true).open(&path)?;
                f.set_len(valid_bytes)?;
            }
            seg_id = last
                .strip_prefix("seg-")
                .and_then(|s| s.strip_suffix(".hjs"))
                .and_then(|s| s.parse().ok())
                .unwrap_or(segs.len() as u64);
            seg_bytes = valid_bytes;
            seg_records = records.len() as u64;
            seg_buf = data[..valid_bytes as usize].to_vec();
            open_file = Some(BufWriter::new(OpenOptions::new().append(true).open(&path)?));
        }
        let journal = Journal {
            inner: Mutex::new(WriterInner {
                cfg,
                file: open_file,
                seg_id,
                seg_bytes,
                seg_records,
                seg_buf,
                sealed,
            }),
            epoch: Instant::now(),
            bytes_total: AtomicU64::new(0),
            records_total: AtomicU64::new(0),
            io_errors: AtomicU64::new(0),
            mirror: Mutex::new(None),
            metrics: Mutex::new(None),
        };
        Ok(journal)
    }

    /// The directory this journal writes into.
    pub fn dir(&self) -> PathBuf {
        self.inner
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .cfg
            .dir
            .clone()
    }

    /// Microseconds since this journal was opened — the clock
    /// `JobStart`/`JobEnd`/`Alert` records are stamped with.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Bytes appended through this handle (not counting recovery).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_total.load(Ordering::Relaxed)
    }

    /// Records appended through this handle.
    pub fn records_written(&self) -> u64 {
        self.records_total.load(Ordering::Relaxed)
    }

    /// Append failures swallowed so far (disk full, permissions, …).
    pub fn io_errors(&self) -> u64 {
        self.io_errors.load(Ordering::Relaxed)
    }

    /// Mirror every sealed segment (name + full contents) into a
    /// secondary sink — the cluster points this at a simulated disk so
    /// journal IO is charged to the disk model.
    pub fn set_segment_mirror(&self, mirror: Option<SegmentMirror>) {
        *self.mirror.lock().unwrap_or_else(|p| p.into_inner()) = mirror;
    }

    /// Mirror append volume into registry counters
    /// (`journal_bytes_total`, `journal_records_total`).
    pub fn set_metrics(&self, bytes: Counter, records: Counter) {
        *self.metrics.lock().unwrap_or_else(|p| p.into_inner()) = Some((bytes, records));
    }

    /// Append one record. Never panics and never fails the caller; IO
    /// errors bump [`io_errors`](Journal::io_errors).
    pub fn append(&self, rec: &JournalRecord) {
        let payload = rec.encode();
        let mut frame = Vec::with_capacity(payload.len() + 8);
        put_u32(&mut frame, payload.len() as u32);
        put_u32(&mut frame, crc32(&payload));
        frame.extend_from_slice(&payload);
        // Phase markers, incidents, and alerts must survive a kill
        // right after the append; bulk event traffic may buffer.
        let durable = !matches!(rec, JournalRecord::Event(_));
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let sealed = match self.append_locked(&mut inner, &frame, durable) {
            Ok(sealed) => sealed,
            Err(e) => {
                let n = self.io_errors.fetch_add(1, Ordering::Relaxed);
                if n == 0 {
                    eprintln!("hamr journal: write failed (further errors counted): {e}");
                }
                return;
            }
        };
        drop(inner);
        self.bytes_total
            .fetch_add(frame.len() as u64, Ordering::Relaxed);
        self.records_total.fetch_add(1, Ordering::Relaxed);
        if let Some((bytes, records)) = &*self.metrics.lock().unwrap_or_else(|p| p.into_inner()) {
            bytes.add(frame.len() as u64);
            records.inc();
        }
        // The mirror runs with the writer lock released: mirroring into
        // a traced simdisk emits a trace event, which may re-enter
        // `append` on this very thread through the ring overflow tap.
        // The fresh segment a rotation just opened cannot rotate again
        // within that nested append, so the recursion is depth-one.
        if let Some((name, data)) = sealed {
            if let Some(mirror) = &*self.mirror.lock().unwrap_or_else(|p| p.into_inner()) {
                mirror(&name, &data);
            }
        }
    }

    /// Returns the segment sealed by a rotation this append triggered
    /// (if any), for the caller to mirror outside the writer lock.
    fn append_locked(
        &self,
        inner: &mut WriterInner,
        frame: &[u8],
        durable: bool,
    ) -> std::io::Result<Option<(String, Vec<u8>)>> {
        let mut sealed = None;
        if inner.file.is_none()
            || (inner.seg_records > 0
                && inner.seg_bytes + frame.len() as u64 > inner.cfg.segment_bytes)
        {
            sealed = self.rotate_locked(inner)?;
        }
        let file = inner.file.as_mut().expect("rotate opened a segment");
        file.write_all(frame)?;
        if durable {
            file.flush()?;
        }
        inner.seg_bytes += frame.len() as u64;
        inner.seg_records += 1;
        inner.seg_buf.extend_from_slice(frame);
        Ok(sealed)
    }

    /// Seal the current segment (if any), enforce the byte budget,
    /// rewrite the index, and open the next segment. Returns the
    /// sealed segment's name and bytes so the caller can run the
    /// mirror callback after releasing the writer lock.
    fn rotate_locked(&self, inner: &mut WriterInner) -> std::io::Result<Option<(String, Vec<u8>)>> {
        let mut sealed_seg = None;
        if let Some(mut file) = inner.file.take() {
            file.flush()?;
            let name = segment_name(inner.seg_id);
            inner.sealed.push(SegMeta {
                name: name.clone(),
                records: inner.seg_records,
                bytes: inner.seg_bytes,
            });
            sealed_seg = Some((name, std::mem::take(&mut inner.seg_buf)));
        }
        // Retention: oldest sealed segments go first; the open segment
        // is never deleted.
        if inner.cfg.max_total_bytes > 0 {
            let mut total: u64 = inner.sealed.iter().map(|s| s.bytes).sum();
            while total > inner.cfg.max_total_bytes && inner.sealed.len() > 1 {
                let victim = inner.sealed.remove(0);
                total -= victim.bytes;
                let _ = std::fs::remove_file(inner.cfg.dir.join(&victim.name));
            }
        }
        write_index(&inner.cfg.dir, &inner.sealed)?;
        inner.seg_id += 1;
        inner.seg_bytes = 0;
        inner.seg_records = 0;
        inner.seg_buf.clear();
        let path = inner.cfg.dir.join(segment_name(inner.seg_id));
        inner.file = Some(BufWriter::new(
            OpenOptions::new().create(true).append(true).open(path)?,
        ));
        Ok(sealed_seg)
    }

    /// Flush buffered frames to the filesystem.
    pub fn flush(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(file) = inner.file.as_mut() {
            if file.flush().is_err() {
                self.io_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

impl Drop for Journal {
    fn drop(&mut self) {
        self.flush();
    }
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("dir", &self.dir())
            .field("records", &self.records_written())
            .field("io_errors", &self.io_errors())
            .finish()
    }
}

fn list_segments(dir: &Path) -> std::io::Result<Vec<String>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().to_string();
        if name.starts_with("seg-") && name.ends_with(".hjs") {
            out.push(name);
        }
    }
    Ok(out)
}

/// Scan one segment file: `(decoded frames as raw payloads, bytes of
/// the valid prefix, full file contents)`. Stops at the first corrupt
/// or partial frame.
fn scan_segment(path: &Path) -> std::io::Result<(Vec<Vec<u8>>, u64, Vec<u8>)> {
    let mut data = Vec::new();
    File::open(path)?.read_to_end(&mut data)?;
    let mut payloads = Vec::new();
    let mut off = 0usize;
    while off + 8 <= data.len() {
        let len = u32::from_le_bytes(data[off..off + 4].try_into().unwrap()) as u64;
        let crc = u32::from_le_bytes(data[off + 4..off + 8].try_into().unwrap());
        if len > MAX_FRAME_BYTES || off + 8 + len as usize > data.len() {
            break;
        }
        let payload = &data[off + 8..off + 8 + len as usize];
        if crc32(payload) != crc {
            break;
        }
        payloads.push(payload.to_vec());
        off += 8 + len as usize;
    }
    Ok((payloads, off as u64, data))
}

fn write_index(dir: &Path, sealed: &[SegMeta]) -> std::io::Result<()> {
    let mut out = String::from("hamr-journal/1\n");
    for s in sealed {
        out.push_str(&format!(
            "segment {} records {} bytes {}\n",
            s.name, s.records, s.bytes
        ));
    }
    let tmp = dir.join(format!("{INDEX_NAME}.tmp"));
    std::fs::write(&tmp, out)?;
    std::fs::rename(tmp, dir.join(INDEX_NAME))
}

// --------------------------------------------------------------------------
// Reader
// --------------------------------------------------------------------------

/// Everything a journal directory yielded on read.
#[derive(Debug, Default)]
pub struct JournalRead {
    /// Decoded records across all segments, oldest first.
    pub records: Vec<JournalRecord>,
    /// Segments that contributed at least one frame.
    pub segments: usize,
    /// Frames abandoned to CRC corruption or a torn tail.
    pub truncated_frames: u64,
    /// Frames whose payload decoded to an unknown tag or malformed
    /// body (skipped, e.g. written by a newer version).
    pub unknown_records: u64,
}

/// Read a journal directory offline. Corruption inside a segment
/// abandons the rest of *that* segment only; later segments still
/// load. Missing directories are an error; an empty one is not.
pub fn read_journal(dir: &Path) -> Result<JournalRead, String> {
    let mut segs = list_segments(dir).map_err(|e| format!("read {}: {e}", dir.display()))?;
    segs.sort();
    let mut out = JournalRead::default();
    for name in &segs {
        let path = dir.join(name);
        let (payloads, valid, data) =
            scan_segment(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        if (data.len() as u64) > valid {
            out.truncated_frames += 1;
        }
        if !payloads.is_empty() {
            out.segments += 1;
        }
        for payload in payloads {
            match JournalRecord::decode(&payload) {
                Ok(rec) => out.records.push(rec),
                Err(_) => out.unknown_records += 1,
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

    fn temp_dir(test: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "hamr_journal_{test}_{}_{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_records() -> Vec<JournalRecord> {
        let mut snap = Snapshot {
            label: "wc".into(),
            seq: 3,
            series: Vec::new(),
        };
        snap.series.push(SeriesSample {
            name: "shuffled_bytes_total".into(),
            labels: Labels::new().job("wc").engine("hamr"),
            value: SampleValue::Counter(1234),
        });
        snap.series.push(SeriesSample {
            name: "queue_depth".into(),
            labels: Labels::new().node(1).flowlet(2),
            value: SampleValue::Gauge(-7),
        });
        snap.series.push(SeriesSample {
            name: "task_latency_us".into(),
            labels: Labels::new().flowlet(0),
            value: SampleValue::Histogram(HistSample {
                count: 3,
                sum_us: 300,
                buckets: vec![0, 1, 2],
            }),
        });
        vec![
            JournalRecord::JobStart {
                job: "wc".into(),
                engine: "hamr".into(),
                t_us: 10,
            },
            JournalRecord::Event(RecordedEvent {
                t_us: 20,
                node: 1,
                worker: 2,
                name: "bin-shipped".into(),
                args: vec![("bytes".into(), 128), ("edge".into(), 1)],
            }),
            JournalRecord::Epoch(snap),
            JournalRecord::AuditEpoch {
                job: "wc".into(),
                report_json: "{\"enabled\":false}".into(),
            },
            JournalRecord::Incident {
                job: "wc".into(),
                class: "backpressure".into(),
                epoch: 7,
                detail: "windows full".into(),
            },
            JournalRecord::Alert {
                rule: "queue-depth-high-water".into(),
                firing: true,
                t_us: 30,
                value: 9.0,
                threshold: 1.0,
                detail: "deferred_bins=9".into(),
            },
            JournalRecord::Stats(StatsSnapshot {
                job: "wc".into(),
                engine: "hamr".into(),
                edges: vec![EdgeStatsSummary {
                    edge: 1,
                    shuffle: true,
                    records: 100,
                    bytes: 2048,
                    distinct: 42,
                    hot_share: 0.25,
                    top: vec![TopKey {
                        hash: 7,
                        count: 25,
                        err: 1,
                        key: b"the".to_vec(),
                    }],
                    p50: 15,
                    p90: 63,
                    p99: 127,
                }],
                samples: vec![LineageSample {
                    hash: 7,
                    key: b"the".to_vec(),
                    hops: vec![LineageHop {
                        kind: HopKind::Scatter,
                        flowlet: 2,
                        flowlet_name: "mapper".into(),
                        edge: 1,
                        src: 0,
                        dst: 3,
                        records: 9,
                    }],
                }],
            }),
            JournalRecord::JobEnd {
                job: "wc".into(),
                ok: false,
                t_us: 40,
                elapsed_us: 30,
                shuffled_bytes: 1234,
            },
        ]
    }

    #[test]
    fn records_round_trip_through_binary_encoding() {
        for rec in sample_records() {
            let encoded = rec.encode();
            let decoded = JournalRecord::decode(&encoded).expect("decode");
            assert_eq!(decoded, rec);
        }
    }

    #[test]
    fn write_read_round_trip_and_reopen_appends() {
        let dir = temp_dir("roundtrip");
        let recs = sample_records();
        {
            let j = Journal::open(JournalConfig::new(&dir)).expect("open");
            for r in &recs {
                j.append(r);
            }
            assert_eq!(j.records_written(), recs.len() as u64);
            assert_eq!(j.io_errors(), 0);
        }
        let read = read_journal(&dir).expect("read");
        assert_eq!(read.records, recs);
        assert_eq!(read.truncated_frames, 0);
        // Reopen and append: the earlier records survive.
        {
            let j = Journal::open(JournalConfig::new(&dir)).expect("reopen");
            j.append(&recs[0]);
        }
        let read = read_journal(&dir).expect("read after reopen");
        assert_eq!(read.records.len(), recs.len() + 1);
        assert_eq!(read.records[recs.len()], recs[0]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn segments_rotate_and_retention_deletes_oldest() {
        let dir = temp_dir("rotate");
        let mut cfg = JournalConfig::new(&dir);
        cfg.segment_bytes = 256;
        cfg.max_total_bytes = 1024;
        let j = Journal::open(cfg).expect("open");
        let mirrored = std::sync::Arc::new(AtomicU64::new(0));
        let m = std::sync::Arc::clone(&mirrored);
        j.set_segment_mirror(Some(Box::new(move |_name, bytes| {
            m.fetch_add(bytes.len() as u64, Ordering::Relaxed);
        })));
        for i in 0..200u64 {
            j.append(&JournalRecord::Incident {
                job: format!("job-{i}"),
                class: "hang".into(),
                epoch: i,
                detail: "x".repeat(32),
            });
        }
        j.flush();
        let segs = list_segments(&dir).expect("list");
        assert!(
            segs.len() > 1,
            "rotation produced {} segment(s)",
            segs.len()
        );
        let total: u64 = segs
            .iter()
            .map(|s| std::fs::metadata(dir.join(s)).map(|m| m.len()).unwrap_or(0))
            .sum();
        // Sealed segments fit the budget; only the open segment may
        // exceed it transiently.
        assert!(total < 1024 + 512, "retention kept {total} bytes");
        assert!(mirrored.load(Ordering::Relaxed) > 0, "mirror saw seals");
        // The surviving window is the newest suffix.
        let read = read_journal(&dir).expect("read");
        assert!(read.records.len() < 200);
        match read.records.last().expect("non-empty") {
            JournalRecord::Incident { epoch, .. } => assert_eq!(*epoch, 199),
            other => panic!("unexpected tail {other:?}"),
        }
        let epochs: Vec<u64> = read
            .records
            .iter()
            .map(|r| match r {
                JournalRecord::Incident { epoch, .. } => *epoch,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        for pair in epochs.windows(2) {
            assert_eq!(pair[1], pair[0] + 1, "contiguous suffix");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crc_corruption_abandons_the_rest_of_that_segment_only() {
        let dir = temp_dir("crc");
        let mut cfg = JournalConfig::new(&dir);
        cfg.segment_bytes = 200;
        cfg.max_total_bytes = 0;
        let j = Journal::open(cfg).expect("open");
        for i in 0..40u64 {
            j.append(&JournalRecord::Incident {
                job: "wc".into(),
                class: "hang".into(),
                epoch: i,
                detail: "detail".into(),
            });
        }
        j.flush();
        drop(j);
        let clean = read_journal(&dir).expect("clean read");
        let mut segs = list_segments(&dir).expect("list");
        segs.sort();
        assert!(segs.len() >= 3, "need several segments, got {segs:?}");
        // Flip one payload byte in the middle of the first segment.
        let victim = dir.join(&segs[0]);
        let mut bytes = std::fs::read(&victim).expect("read victim");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&victim, bytes).expect("corrupt");
        let read = read_journal(&dir).expect("read survives corruption");
        assert!(read.truncated_frames >= 1);
        assert!(
            read.records.len() < clean.records.len(),
            "corruption dropped frames"
        );
        // Records from the later, untouched segments are still there.
        match read.records.last().expect("non-empty") {
            JournalRecord::Incident { epoch, .. } => assert_eq!(*epoch, 39),
            other => panic!("unexpected tail {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_tail_recovers_on_reopen() {
        let dir = temp_dir("tail");
        let recs = sample_records();
        {
            let j = Journal::open(JournalConfig::new(&dir)).expect("open");
            for r in &recs {
                j.append(r);
            }
        }
        // Tear the tail: chop the last 5 bytes of the open segment,
        // simulating a crash mid-write.
        let mut segs = list_segments(&dir).expect("list");
        segs.sort();
        let tail = dir.join(segs.last().expect("has segment"));
        let bytes = std::fs::read(&tail).expect("read");
        std::fs::write(&tail, &bytes[..bytes.len() - 5]).expect("tear");
        let read = read_journal(&dir).expect("read torn");
        assert_eq!(read.records.len(), recs.len() - 1, "torn record dropped");
        assert_eq!(read.truncated_frames, 1);
        // Reopen truncates the torn frame and appends cleanly after it.
        {
            let j = Journal::open(JournalConfig::new(&dir)).expect("reopen");
            j.append(&recs[0]);
        }
        let read = read_journal(&dir).expect("read recovered");
        assert_eq!(read.records.len(), recs.len());
        assert_eq!(read.truncated_frames, 0, "reopen truncated the tear");
        assert_eq!(read.records.last(), Some(&recs[0]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_mode_parses_env_forms() {
        std::env::remove_var("HAMR_JOURNAL");
        assert_eq!(JournalMode::from_env(), JournalMode::Off);
        std::env::set_var("HAMR_JOURNAL", "off");
        assert_eq!(JournalMode::from_env(), JournalMode::Off);
        std::env::set_var("HAMR_JOURNAL", "auto");
        assert_eq!(JournalMode::from_env(), JournalMode::Auto);
        std::env::set_var("HAMR_JOURNAL", "/tmp/j");
        assert_eq!(
            JournalMode::from_env(),
            JournalMode::Dir(PathBuf::from("/tmp/j"))
        );
        std::env::remove_var("HAMR_JOURNAL");
    }
}
