//! Offline run reconstruction from a journal directory.
//!
//! [`Timeline::load`] walks the journal records in order and folds
//! them into per-job spans: when the job started, whether (and how) it
//! ended, how many bytes it shuffled, what the resident cache served,
//! the p99 task latency for its epoch, which watchdog incidents and
//! stuck edges it left behind, and which alerts fired while it ran. A
//! `JobStart` with no matching `JobEnd` is a run killed mid-flight —
//! exactly the case the journal exists for.
//!
//! `hamr timeline <dir>` renders this; `hamr timeline --diff a b`
//! compares two reconstructions job by job.

use super::{read_journal, JournalRecord};
use crate::audit::AuditReport;
use crate::hist::bucket_upper;
use crate::json;
use crate::registry::{HistSample, SampleValue, Snapshot};
use std::path::Path;

/// A watchdog incident attached to the job it interrupted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IncidentNote {
    pub class: String,
    pub epoch: u64,
    pub detail: String,
}

/// One alert transition (fired or resolved), with the job that was
/// open when it happened.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertNote {
    pub rule: String,
    pub firing: bool,
    pub t_us: u64,
    pub value: f64,
    pub threshold: f64,
    pub detail: String,
    pub job: Option<String>,
}

/// One job's reconstructed span.
#[derive(Debug, Clone, Default)]
pub struct JobSpan {
    pub job: String,
    pub engine: String,
    pub start_us: u64,
    /// `None` when the journal ends before the job did — the process
    /// was killed mid-job.
    pub end_us: Option<u64>,
    pub ok: Option<bool>,
    pub elapsed_us: Option<u64>,
    pub shuffled_bytes: Option<u64>,
    /// Resident-cache hits served during this job's epoch delta.
    pub cache_hits: u64,
    /// Flow-control stall time accumulated during this job's epoch.
    pub stall_us: u64,
    /// p99 task latency over this job's epoch delta histogram.
    pub task_p99_us: Option<u64>,
    /// Trace events journaled while this job was open (ring-overflow
    /// tap plus the post-mortem tail of a failed run).
    pub events: u64,
    pub incidents: Vec<IncidentNote>,
    /// Stuck custody edges from the audit epoch, rendered as
    /// `edge E -> node N (K bins in flight)`.
    pub stuck_edges: Vec<String>,
    /// Alert *firings* (not resolutions) while this job was open.
    pub alerts_fired: u64,
    /// Per-edge data-plane cardinality lines from the job's
    /// `StatsSnapshot` record, rendered as
    /// `edge E: N records, ~D distinct keys, hot K%, p99 val B bytes`.
    pub edge_stats: Vec<String>,
}

impl JobSpan {
    /// Wall time: explicit elapsed from `JobEnd`, else span width.
    pub fn wall_us(&self) -> Option<u64> {
        self.elapsed_us
            .or_else(|| self.end_us.map(|e| e.saturating_sub(self.start_us)))
    }
}

/// The reconstruction of everything a journal directory recorded.
#[derive(Debug, Default)]
pub struct Timeline {
    pub jobs: Vec<JobSpan>,
    pub alerts: Vec<AlertNote>,
    /// Total records decoded across all merged journals.
    pub records: usize,
    pub truncated_frames: u64,
    pub unknown_records: u64,
    /// Journal directories merged (an `auto` parent holds one per
    /// cluster).
    pub sources: usize,
}

/// p-th quantile of a histogram sample, mirroring
/// [`LatencyHistogram::quantile_us`](crate::LatencyHistogram):
/// smallest bucket whose cumulative count reaches `ceil(q * count)`.
pub fn hist_quantile_us(h: &HistSample, q: f64) -> u64 {
    if h.count == 0 {
        return 0;
    }
    let target = ((q * h.count as f64).ceil() as u64).clamp(1, h.count);
    let mut cum = 0u64;
    for (b, &n) in h.buckets.iter().enumerate() {
        cum += n;
        if cum >= target {
            return bucket_upper(b);
        }
    }
    bucket_upper(h.buckets.len().saturating_sub(1))
}

/// Sum every `flowlet_task_latency_us` series in a snapshot into one
/// aggregate histogram.
fn aggregate_latency(snap: &Snapshot) -> Option<HistSample> {
    let mut agg: Option<HistSample> = None;
    for s in &snap.series {
        if s.name != "flowlet_task_latency_us" {
            continue;
        }
        if let SampleValue::Histogram(h) = &s.value {
            let agg = agg.get_or_insert_with(|| HistSample {
                count: 0,
                sum_us: 0,
                buckets: vec![0; h.buckets.len()],
            });
            agg.count += h.count;
            agg.sum_us += h.sum_us;
            if agg.buckets.len() < h.buckets.len() {
                agg.buckets.resize(h.buckets.len(), 0);
            }
            for (i, n) in h.buckets.iter().enumerate() {
                agg.buckets[i] += n;
            }
        }
    }
    agg
}

impl Timeline {
    /// Load a journal directory. If `dir` itself has no segments but
    /// its immediate subdirectories do (the `HAMR_JOURNAL=auto`
    /// layout, one subjournal per cluster), every subjournal is loaded
    /// and merged in name order.
    pub fn load(dir: &Path) -> Result<Timeline, String> {
        let direct = read_journal(dir)?;
        if !direct.records.is_empty() || direct.truncated_frames > 0 {
            let mut t = Timeline::from_records(&direct.records);
            t.truncated_frames = direct.truncated_frames;
            t.unknown_records = direct.unknown_records;
            t.sources = 1;
            return Ok(t);
        }
        let mut subs: Vec<_> = std::fs::read_dir(dir)
            .map_err(|e| format!("read {}: {e}", dir.display()))?
            .filter_map(|e| e.ok())
            .filter(|e| e.path().is_dir())
            .map(|e| e.path())
            .collect();
        subs.sort();
        let mut all = Vec::new();
        let mut out = Timeline::default();
        for sub in subs {
            if let Ok(read) = read_journal(&sub) {
                if read.records.is_empty() && read.truncated_frames == 0 {
                    continue;
                }
                out.sources += 1;
                out.truncated_frames += read.truncated_frames;
                out.unknown_records += read.unknown_records;
                all.extend(read.records);
            }
        }
        if out.sources == 0 {
            return Err(format!(
                "no journal segments under {} (or its subdirectories)",
                dir.display()
            ));
        }
        let folded = Timeline::from_records(&all);
        out.jobs = folded.jobs;
        out.alerts = folded.alerts;
        out.records = folded.records;
        Ok(out)
    }

    /// Fold an ordered record stream into spans.
    pub fn from_records(records: &[JournalRecord]) -> Timeline {
        let mut t = Timeline {
            records: records.len(),
            ..Timeline::default()
        };
        let mut open: Option<usize> = None;
        let mut prev_epoch: Option<Snapshot> = None;
        for rec in records {
            match rec {
                JournalRecord::JobStart { job, engine, t_us } => {
                    t.jobs.push(JobSpan {
                        job: job.clone(),
                        engine: engine.clone(),
                        start_us: *t_us,
                        ..JobSpan::default()
                    });
                    open = Some(t.jobs.len() - 1);
                }
                JournalRecord::JobEnd {
                    job,
                    ok,
                    t_us,
                    elapsed_us,
                    shuffled_bytes,
                } => {
                    // Close the open span if it matches; otherwise find
                    // the newest unclosed span with this name (a tap
                    // record may interleave oddly across reopens).
                    let idx = open.filter(|&i| t.jobs[i].job == *job).or_else(|| {
                        t.jobs
                            .iter()
                            .rposition(|s| s.job == *job && s.end_us.is_none())
                    });
                    if let Some(i) = idx {
                        let span = &mut t.jobs[i];
                        span.end_us = Some(*t_us);
                        span.ok = Some(*ok);
                        span.elapsed_us = Some(*elapsed_us);
                        if span.shuffled_bytes.is_none() {
                            span.shuffled_bytes = Some(*shuffled_bytes);
                        }
                    }
                    open = None;
                }
                JournalRecord::Event(_) => {
                    if let Some(i) = open {
                        t.jobs[i].events += 1;
                    }
                }
                JournalRecord::Epoch(snap) => {
                    let delta = match &prev_epoch {
                        Some(prev) => snap.delta(prev),
                        None => snap.clone(),
                    };
                    let target = open.or_else(|| (!t.jobs.is_empty()).then(|| t.jobs.len() - 1));
                    if let Some(i) = target {
                        let span = &mut t.jobs[i];
                        span.shuffled_bytes = Some(delta.counter_total("shuffled_bytes_total"));
                        span.cache_hits = delta.counter_total("hamr_cache_hits_total");
                        span.stall_us = delta.counter_total("flowlet_stall_us_total");
                        if let Some(h) = aggregate_latency(&delta) {
                            if h.count > 0 {
                                span.task_p99_us = Some(hist_quantile_us(&h, 0.99));
                            }
                        }
                    }
                    prev_epoch = Some(snap.clone());
                }
                JournalRecord::AuditEpoch { job, report_json } => {
                    let stuck = parse_stuck_edges(report_json);
                    let idx = open
                        .filter(|&i| t.jobs[i].job == *job)
                        .or_else(|| t.jobs.iter().rposition(|s| s.job == *job));
                    if let Some(i) = idx {
                        t.jobs[i].stuck_edges = stuck;
                    }
                }
                JournalRecord::Incident {
                    job,
                    class,
                    epoch,
                    detail,
                } => {
                    let note = IncidentNote {
                        class: class.clone(),
                        epoch: *epoch,
                        detail: detail.clone(),
                    };
                    let idx = open
                        .filter(|&i| t.jobs[i].job == *job)
                        .or_else(|| t.jobs.iter().rposition(|s| s.job == *job));
                    if let Some(i) = idx {
                        t.jobs[i].incidents.push(note);
                    }
                }
                JournalRecord::Alert {
                    rule,
                    firing,
                    t_us,
                    value,
                    threshold,
                    detail,
                } => {
                    let job = open.map(|i| t.jobs[i].job.clone());
                    if *firing {
                        if let Some(i) = open {
                            t.jobs[i].alerts_fired += 1;
                        }
                    }
                    t.alerts.push(AlertNote {
                        rule: rule.clone(),
                        firing: *firing,
                        t_us: *t_us,
                        value: *value,
                        threshold: *threshold,
                        detail: detail.clone(),
                        job,
                    });
                }
                JournalRecord::Stats(snap) => {
                    let idx = open
                        .filter(|&i| t.jobs[i].job == snap.job)
                        .or_else(|| t.jobs.iter().rposition(|s| s.job == snap.job));
                    if let Some(i) = idx {
                        // Each job's StatsSnapshot is built from a
                        // fresh per-job plane, so these per-edge counts
                        // are already deltas, not running totals.
                        t.jobs[i].edge_stats = snap
                            .edges
                            .iter()
                            .map(|e| {
                                let mut line = format!(
                                    "edge {}: {} records, ~{} distinct keys, hot {:.0}%, p99 val {}B",
                                    e.edge,
                                    e.records,
                                    e.distinct,
                                    e.hot_share * 100.0,
                                    e.p99
                                );
                                if e.shuffle {
                                    line.push_str(" [shuffle]");
                                }
                                line
                            })
                            .collect();
                    }
                }
            }
        }
        t
    }

    /// Jobs that never saw a `JobEnd` — killed mid-flight.
    pub fn unfinished(&self) -> Vec<&JobSpan> {
        self.jobs.iter().filter(|s| s.end_us.is_none()).collect()
    }

    /// Render the reconstruction as an operator-facing report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "journal: {} job(s), {} record(s), {} source(s)",
            self.jobs.len(),
            self.records,
            self.sources
        ));
        if self.truncated_frames > 0 {
            out.push_str(&format!(
                " — {} truncated frame(s) recovered past",
                self.truncated_frames
            ));
        }
        out.push('\n');
        out.push_str(&format!(
            "{:<28} {:>9} {:>12} {:>10} {:>10} {:>9}  status\n",
            "job", "wall ms", "shuffled B", "cache hit", "stall ms", "p99 us"
        ));
        for span in &self.jobs {
            let wall = span
                .wall_us()
                .map(|us| format!("{:.1}", us as f64 / 1000.0))
                .unwrap_or_else(|| "?".into());
            let shuffled = span
                .shuffled_bytes
                .map(|b| b.to_string())
                .unwrap_or_else(|| "?".into());
            let p99 = span
                .task_p99_us
                .map(|us| us.to_string())
                .unwrap_or_else(|| "-".into());
            let status = match span.ok {
                Some(true) => "ok".to_string(),
                Some(false) => "FAILED".to_string(),
                None => "KILLED MID-FLIGHT".to_string(),
            };
            out.push_str(&format!(
                "{:<28} {:>9} {:>12} {:>10} {:>10.1} {:>9}  {}\n",
                span.job,
                wall,
                shuffled,
                span.cache_hits,
                span.stall_us as f64 / 1000.0,
                p99,
                status
            ));
            for inc in &span.incidents {
                out.push_str(&format!(
                    "    incident: {} at watchdog epoch {} — {}\n",
                    inc.class, inc.epoch, inc.detail
                ));
            }
            for edge in &span.stuck_edges {
                out.push_str(&format!("    stuck: {edge}\n"));
            }
            for line in &span.edge_stats {
                out.push_str(&format!("    keys: {line}\n"));
            }
        }
        let firings: Vec<&AlertNote> = self.alerts.iter().filter(|a| a.firing).collect();
        if firings.is_empty() {
            out.push_str("alerts: none fired\n");
        } else {
            out.push_str(&format!("alerts: {} firing transition(s)\n", firings.len()));
            for a in &firings {
                out.push_str(&format!(
                    "    ALERT {} during {}: {} (value {:.1}, threshold {:.1})\n",
                    a.rule,
                    a.job.as_deref().unwrap_or("<between jobs>"),
                    a.detail,
                    a.value,
                    a.threshold
                ));
            }
        }
        for span in self.unfinished() {
            out.push_str(&format!(
                "final state: job {} was open when the journal ends — last completed epoch is the span above it\n",
                span.job
            ));
        }
        out
    }

    /// Compare two reconstructions job by job (matched by name, first
    /// occurrence).
    pub fn render_diff(a: &Timeline, b: &Timeline) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "diff: {} job(s) vs {} job(s)\n",
            a.jobs.len(),
            b.jobs.len()
        ));
        out.push_str(&format!(
            "{:<28} {:>10} {:>10} {:>7} {:>13} {:>13}  status a/b\n",
            "job", "wall a ms", "wall b ms", "ratio", "shuffled a", "shuffled b"
        ));
        for sa in &a.jobs {
            let sb = b.jobs.iter().find(|s| s.job == sa.job);
            match sb {
                Some(sb) => {
                    let wa = sa.wall_us().unwrap_or(0) as f64 / 1000.0;
                    let wb = sb.wall_us().unwrap_or(0) as f64 / 1000.0;
                    let ratio = if wb > 0.0 { wa / wb } else { f64::NAN };
                    out.push_str(&format!(
                        "{:<28} {:>10.1} {:>10.1} {:>7.2} {:>13} {:>13}  {}/{}\n",
                        sa.job,
                        wa,
                        wb,
                        ratio,
                        sa.shuffled_bytes.unwrap_or(0),
                        sb.shuffled_bytes.unwrap_or(0),
                        status_ch(sa),
                        status_ch(sb)
                    ));
                }
                None => out.push_str(&format!("{:<28} only in first journal\n", sa.job)),
            }
        }
        for sb in &b.jobs {
            if !a.jobs.iter().any(|s| s.job == sb.job) {
                out.push_str(&format!("{:<28} only in second journal\n", sb.job));
            }
        }
        let fa = a.alerts.iter().filter(|x| x.firing).count();
        let fb = b.alerts.iter().filter(|x| x.firing).count();
        out.push_str(&format!("alert firings: {fa} vs {fb}\n"));
        out
    }
}

fn status_ch(s: &JobSpan) -> &'static str {
    match s.ok {
        Some(true) => "ok",
        Some(false) => "FAIL",
        None => "KILLED",
    }
}

/// Parse an audit-epoch JSON payload back into stuck-edge lines.
fn parse_stuck_edges(report_json: &str) -> Vec<String> {
    let Ok(v) = json::parse(report_json) else {
        return Vec::new();
    };
    let Ok(report) = AuditReport::from_json(&v) else {
        return Vec::new();
    };
    report
        .stuck_rows()
        .into_iter()
        .map(|(row, gap)| {
            format!(
                "edge {} -> node {} ({} bins in flight)",
                row.edge, row.dst, gap
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::super::JournalRecord;
    use super::*;
    use crate::audit::RecordedEvent;
    use crate::registry::{Labels, SeriesSample};

    fn snap(label: &str, seq: u64, shuffled: u64, lat_bucket: usize, lat_n: u64) -> Snapshot {
        let mut buckets = vec![0u64; 64];
        buckets[lat_bucket] = lat_n;
        Snapshot {
            label: label.into(),
            seq,
            series: vec![
                SeriesSample {
                    name: "shuffled_bytes_total".into(),
                    labels: Labels::new().engine("hamr"),
                    value: SampleValue::Counter(shuffled),
                },
                SeriesSample {
                    name: "flowlet_task_latency_us".into(),
                    labels: Labels::new().engine("hamr").flowlet(0),
                    value: SampleValue::Histogram(HistSample {
                        count: lat_n,
                        sum_us: lat_n * 100,
                        buckets,
                    }),
                },
            ],
        }
    }

    #[test]
    fn reconstructs_completed_and_killed_spans() {
        let records = vec![
            JournalRecord::JobStart {
                job: "wc".into(),
                engine: "hamr".into(),
                t_us: 0,
            },
            JournalRecord::Epoch(snap("wc", 1, 1000, 7, 10)),
            JournalRecord::JobEnd {
                job: "wc".into(),
                ok: true,
                t_us: 5000,
                elapsed_us: 5000,
                shuffled_bytes: 1000,
            },
            JournalRecord::JobStart {
                job: "pr".into(),
                engine: "hamr".into(),
                t_us: 6000,
            },
            JournalRecord::Event(RecordedEvent {
                t_us: 6500,
                node: 0,
                worker: 0,
                name: "bin-shipped".into(),
                args: vec![],
            }),
            JournalRecord::Incident {
                job: "pr".into(),
                class: "backpressure".into(),
                epoch: 4,
                detail: "deferred>0".into(),
            },
            JournalRecord::Alert {
                rule: "queue-depth-high-water".into(),
                firing: true,
                t_us: 6600,
                value: 8.0,
                threshold: 1.0,
                detail: "deferred_bins=8".into(),
            },
        ];
        let t = Timeline::from_records(&records);
        assert_eq!(t.jobs.len(), 2);
        assert_eq!(t.jobs[0].ok, Some(true));
        assert_eq!(t.jobs[0].shuffled_bytes, Some(1000));
        assert_eq!(t.jobs[0].task_p99_us, Some(127), "p99 = upper of bucket 7");
        assert_eq!(t.jobs[1].ok, None, "killed mid-flight");
        assert_eq!(t.jobs[1].events, 1);
        assert_eq!(t.jobs[1].incidents.len(), 1);
        assert_eq!(t.jobs[1].alerts_fired, 1);
        assert_eq!(t.unfinished().len(), 1);
        let rendered = t.render();
        assert!(rendered.contains("wc"));
        assert!(rendered.contains("KILLED MID-FLIGHT"));
        assert!(rendered.contains("backpressure"));
        assert!(rendered.contains("queue-depth-high-water"));
    }

    #[test]
    fn epoch_deltas_are_per_job_not_cumulative() {
        let records = vec![
            JournalRecord::JobStart {
                job: "a".into(),
                engine: "hamr".into(),
                t_us: 0,
            },
            JournalRecord::Epoch(snap("a", 1, 1000, 5, 4)),
            JournalRecord::JobEnd {
                job: "a".into(),
                ok: true,
                t_us: 100,
                elapsed_us: 100,
                shuffled_bytes: 1000,
            },
            JournalRecord::JobStart {
                job: "b".into(),
                engine: "hamr".into(),
                t_us: 200,
            },
            // Cumulative counter reads 1500: job b shuffled only 500.
            JournalRecord::Epoch(snap("b", 2, 1500, 5, 8)),
            JournalRecord::JobEnd {
                job: "b".into(),
                ok: true,
                t_us: 300,
                elapsed_us: 100,
                shuffled_bytes: 500,
            },
        ];
        let t = Timeline::from_records(&records);
        assert_eq!(t.jobs[0].shuffled_bytes, Some(1000));
        assert_eq!(t.jobs[1].shuffled_bytes, Some(500), "delta, not cumulative");
    }

    #[test]
    fn diff_pairs_jobs_by_name() {
        let a = Timeline::from_records(&[
            JournalRecord::JobStart {
                job: "wc".into(),
                engine: "hamr".into(),
                t_us: 0,
            },
            JournalRecord::JobEnd {
                job: "wc".into(),
                ok: true,
                t_us: 1000,
                elapsed_us: 1000,
                shuffled_bytes: 10,
            },
        ]);
        let b = Timeline::from_records(&[
            JournalRecord::JobStart {
                job: "wc".into(),
                engine: "hamr".into(),
                t_us: 0,
            },
            JournalRecord::JobEnd {
                job: "wc".into(),
                ok: true,
                t_us: 2000,
                elapsed_us: 2000,
                shuffled_bytes: 20,
            },
            JournalRecord::JobStart {
                job: "extra".into(),
                engine: "hamr".into(),
                t_us: 3000,
            },
        ]);
        let diff = Timeline::render_diff(&a, &b);
        assert!(diff.contains("wc"));
        assert!(diff.contains("0.50"), "wall ratio 1000/2000: {diff}");
        assert!(diff.contains("only in second journal"));
    }

    #[test]
    fn hist_quantile_matches_latency_histogram_convention() {
        let h = HistSample {
            count: 100,
            sum_us: 0,
            buckets: {
                let mut b = vec![0u64; 64];
                b[3] = 50;
                b[10] = 49;
                b[20] = 1;
                b
            },
        };
        assert_eq!(hist_quantile_us(&h, 0.5), bucket_upper(3));
        assert_eq!(hist_quantile_us(&h, 0.99), bucket_upper(10));
        assert_eq!(hist_quantile_us(&h, 1.0), bucket_upper(20));
        assert_eq!(
            hist_quantile_us(
                &HistSample {
                    count: 0,
                    sum_us: 0,
                    buckets: vec![0; 64]
                },
                0.99
            ),
            0
        );
    }
}
