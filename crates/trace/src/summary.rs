//! Plain-text per-flowlet summary rendering and per-worker occupancy
//! analysis.

use crate::{EventKind, LatencyHistogram, TraceEvent};
use std::collections::BTreeMap;

/// One row of the per-flowlet summary table. Engines fill these from
/// their aggregated metrics; `render_summary` turns them into text.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlowletSummaryRow {
    pub name: String,
    pub kind: String,
    pub tasks: u64,
    pub records_in: u64,
    pub records_out: u64,
    pub p50_us: u64,
    pub p95_us: u64,
    pub p99_us: u64,
    /// Cumulative flow-control stall time, microseconds.
    pub stall_us: u64,
    /// Number of flow-control stall occurrences.
    pub stalls: u64,
    pub spilled_bytes: u64,
}

impl FlowletSummaryRow {
    /// Convenience: fill the latency columns from a histogram.
    pub fn with_latency(mut self, hist: &LatencyHistogram) -> Self {
        self.p50_us = hist.p50_us();
        self.p95_us = hist.p95_us();
        self.p99_us = hist.p99_us();
        self
    }
}

fn fmt_us(us: u64) -> String {
    if us >= 10_000_000 {
        format!("{:.1}s", us as f64 / 1e6)
    } else if us >= 10_000 {
        format!("{:.1}ms", us as f64 / 1e3)
    } else {
        format!("{us}us")
    }
}

fn fmt_bytes(b: u64) -> String {
    if b >= 10 * 1024 * 1024 {
        format!("{:.1}MiB", b as f64 / (1024.0 * 1024.0))
    } else if b >= 10 * 1024 {
        format!("{:.1}KiB", b as f64 / 1024.0)
    } else {
        format!("{b}B")
    }
}

/// Render an aligned fixed-width table of per-flowlet statistics.
pub fn render_summary(rows: &[FlowletSummaryRow]) -> String {
    const HEADERS: [&str; 10] = [
        "flowlet", "kind", "tasks", "rec_in", "rec_out", "p50", "p95", "p99", "stall", "spilled",
    ];
    let cells: Vec<[String; 10]> = rows
        .iter()
        .map(|r| {
            [
                r.name.clone(),
                r.kind.clone(),
                r.tasks.to_string(),
                r.records_in.to_string(),
                r.records_out.to_string(),
                fmt_us(r.p50_us),
                fmt_us(r.p95_us),
                fmt_us(r.p99_us),
                if r.stalls == 0 {
                    "-".to_string()
                } else {
                    format!("{} ({}x)", fmt_us(r.stall_us), r.stalls)
                },
                if r.spilled_bytes == 0 {
                    "-".to_string()
                } else {
                    fmt_bytes(r.spilled_bytes)
                },
            ]
        })
        .collect();

    let mut widths: Vec<usize> = HEADERS.iter().map(|h| h.len()).collect();
    for row in &cells {
        for (w, c) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(c.chars().count());
        }
    }

    let mut out = String::new();
    let emit_row = |out: &mut String, cols: &[String]| {
        for (i, (c, w)) in cols.iter().zip(&widths).enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(c);
            for _ in c.chars().count()..*w {
                out.push(' ');
            }
        }
        // Trim right-padding on the last column.
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };

    let header: Vec<String> = HEADERS.iter().map(|h| h.to_string()).collect();
    emit_row(&mut out, &header);
    let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    emit_row(&mut out, &rule);
    for row in &cells {
        emit_row(&mut out, row);
    }
    out
}

/// Per-worker occupancy derived from a trace: how many tasks each
/// worker lane ran, how long it was busy, how often it stole, and how
/// long it sat parked. The scheduler's balance report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerOccupancyRow {
    pub node: u32,
    pub worker: u32,
    /// Tasks completed on this lane (`TaskEnd` count).
    pub tasks: u64,
    /// Sum of matched `TaskStart`/`TaskEnd` span durations.
    pub busy_us: u64,
    /// Successful steal operations by this lane.
    pub steals: u64,
    /// Park intervals (`WorkerUnparked` count).
    pub parks: u64,
    /// Total time parked.
    pub parked_us: u64,
    /// Distribution of this lane's task latencies.
    pub latency: LatencyHistogram,
}

/// Fold a trace into per-(node, worker) occupancy rows, sorted by
/// (node, worker). Only real worker lanes appear — the synthetic
/// runtime/net/disk lanes are excluded.
pub fn worker_occupancy(events: &[TraceEvent]) -> Vec<WorkerOccupancyRow> {
    let mut evs: Vec<&TraceEvent> = events.iter().collect();
    evs.sort_by_key(|e| e.t_us);
    let mut rows: BTreeMap<(u32, u32), WorkerOccupancyRow> = BTreeMap::new();
    // Innermost-start matching, as in the Chrome exporter.
    type OpenTask = (u64, crate::TaskKind, u32);
    let mut open: BTreeMap<(u32, u32), Vec<OpenTask>> = BTreeMap::new();
    for ev in evs {
        if ev.worker >= crate::WORKER_DISK {
            continue; // synthetic lanes
        }
        let row = rows
            .entry((ev.node, ev.worker))
            .or_insert_with(|| WorkerOccupancyRow {
                node: ev.node,
                worker: ev.worker,
                ..Default::default()
            });
        match &ev.kind {
            EventKind::TaskStart { task, flowlet, .. } => {
                open.entry((ev.node, ev.worker))
                    .or_default()
                    .push((ev.t_us, *task, *flowlet));
            }
            EventKind::TaskEnd { task, flowlet, .. } => {
                row.tasks += 1;
                let stack = open.entry((ev.node, ev.worker)).or_default();
                if let Some(i) = stack
                    .iter()
                    .rposition(|(_, t, f)| t == task && f == flowlet)
                {
                    let (ts, _, _) = stack.remove(i);
                    let dur = ev.t_us.saturating_sub(ts);
                    row.busy_us += dur;
                    row.latency.record_us(dur);
                }
            }
            EventKind::TaskStolen { .. } => row.steals += 1,
            EventKind::WorkerUnparked { parked_us } => {
                row.parks += 1;
                row.parked_us += parked_us;
            }
            _ => {}
        }
    }
    rows.into_values().collect()
}

/// Render an aligned per-worker occupancy table.
pub fn render_occupancy(rows: &[WorkerOccupancyRow]) -> String {
    const HEADERS: [&str; 7] = [
        "node", "worker", "tasks", "busy", "steals", "parks", "parked",
    ];
    let cells: Vec<[String; 7]> = rows
        .iter()
        .map(|r| {
            [
                r.node.to_string(),
                r.worker.to_string(),
                r.tasks.to_string(),
                fmt_us(r.busy_us),
                if r.steals == 0 {
                    "-".to_string()
                } else {
                    r.steals.to_string()
                },
                if r.parks == 0 {
                    "-".to_string()
                } else {
                    r.parks.to_string()
                },
                if r.parked_us == 0 {
                    "-".to_string()
                } else {
                    fmt_us(r.parked_us)
                },
            ]
        })
        .collect();
    let mut widths: Vec<usize> = HEADERS.iter().map(|h| h.len()).collect();
    for row in &cells {
        for (w, c) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(c.chars().count());
        }
    }
    let mut out = String::new();
    let emit_row = |out: &mut String, cols: &[String]| {
        for (i, (c, w)) in cols.iter().zip(&widths).enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(c);
            for _ in c.chars().count()..*w {
                out.push(' ');
            }
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    let header: Vec<String> = HEADERS.iter().map(|h| h.to_string()).collect();
    emit_row(&mut out, &header);
    let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    emit_row(&mut out, &rule);
    for row in &cells {
        emit_row(&mut out, row);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let rows = vec![
            FlowletSummaryRow {
                name: "SplitMap".into(),
                kind: "map".into(),
                tasks: 128,
                records_in: 100_000,
                records_out: 640_000,
                p50_us: 250,
                p95_us: 800,
                p99_us: 1500,
                stall_us: 52_000,
                stalls: 12,
                spilled_bytes: 0,
            },
            FlowletSummaryRow {
                name: "CountPartial".into(),
                kind: "partial-reduce".into(),
                tasks: 64,
                records_in: 640_000,
                records_out: 9_000,
                p50_us: 90,
                p95_us: 200,
                p99_us: 300,
                stall_us: 0,
                stalls: 0,
                spilled_bytes: 3 * 1024 * 1024 * 1024,
            },
        ];
        let table = render_summary(&rows);
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4, "header + rule + 2 rows:\n{table}");
        assert!(lines[0].starts_with("flowlet"));
        assert!(lines[2].contains("SplitMap"));
        assert!(lines[2].contains("52.0ms (12x)"));
        assert!(lines[3].contains("3072.0MiB"));
        assert!(lines[3].contains(" - "), "zero stall shown as dash");
    }

    #[test]
    fn with_latency_copies_percentiles() {
        let mut h = LatencyHistogram::new();
        for us in [10u64, 20, 30, 40, 1000] {
            h.record_us(us);
        }
        let row = FlowletSummaryRow::default().with_latency(&h);
        assert!(row.p50_us <= row.p95_us && row.p95_us <= row.p99_us);
        assert!(row.p99_us >= 1000);
    }

    #[test]
    fn empty_input_still_renders_header() {
        let table = render_summary(&[]);
        assert!(table.starts_with("flowlet"));
        assert_eq!(table.lines().count(), 2);
    }

    #[test]
    fn occupancy_folds_tasks_steals_and_parks() {
        use crate::TaskKind;
        let ev = |t_us, node, worker, kind| TraceEvent {
            t_us,
            node,
            worker,
            kind,
        };
        let events = vec![
            ev(
                0,
                0,
                0,
                EventKind::TaskStart {
                    task: TaskKind::MapBin,
                    flowlet: 1,
                    span: 0,
                },
            ),
            ev(
                100,
                0,
                0,
                EventKind::TaskEnd {
                    task: TaskKind::MapBin,
                    flowlet: 1,
                    records_in: 4,
                    records_out: 4,
                },
            ),
            ev(
                50,
                0,
                1,
                EventKind::TaskStolen {
                    thief: 1,
                    victim: 0,
                    flowlet: 1,
                },
            ),
            ev(400, 0, 1, EventKind::WorkerUnparked { parked_us: 300 }),
            // Synthetic lanes are excluded.
            ev(
                10,
                0,
                crate::WORKER_RUNTIME,
                EventKind::BinShipped {
                    flowlet: 1,
                    edge: 0,
                    dst: 1,
                    records: 4,
                    bytes: 64,
                    span: 0,
                },
            ),
        ];
        let rows = worker_occupancy(&events);
        assert_eq!(rows.len(), 2);
        assert_eq!((rows[0].node, rows[0].worker), (0, 0));
        assert_eq!(rows[0].tasks, 1);
        assert_eq!(rows[0].busy_us, 100);
        assert_eq!(rows[1].steals, 1);
        assert_eq!(rows[1].parks, 1);
        assert_eq!(rows[1].parked_us, 300);
        let table = render_occupancy(&rows);
        assert!(table.starts_with("node"));
        assert!(table.lines().count() == 4);
        assert!(table.contains("300us"));
    }

    #[test]
    fn unit_formatting() {
        assert_eq!(fmt_us(999), "999us");
        assert_eq!(fmt_us(52_000), "52.0ms");
        assert_eq!(fmt_us(12_000_000), "12.0s");
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(64 * 1024), "64.0KiB");
        assert_eq!(fmt_bytes(128 * 1024 * 1024), "128.0MiB");
    }
}
