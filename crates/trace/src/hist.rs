//! Log-bucketed latency histogram, dependency-free.
//!
//! 64 power-of-two buckets over microseconds: bucket 0 holds exact
//! zeros, bucket `b` (b >= 1) holds values in `[2^(b-1), 2^b)`. That
//! gives ~2x resolution from 1 µs to ~292 years — plenty for task
//! latencies — at a fixed 520-byte footprint, so one histogram can live
//! inside every `FlowletMetrics` without anyone noticing.

use std::time::Duration;

const BUCKETS: usize = 64;

/// Bucket count shared with the registry's concurrent histograms so
/// `LatencyHistogram`s merge into registry series loss-free.
pub(crate) const HIST_BUCKETS: usize = BUCKETS;

/// A mergeable histogram of microsecond latencies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum_us: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum_us: 0,
        }
    }
}

#[inline]
pub(crate) fn bucket_of(us: u64) -> usize {
    if us == 0 {
        0
    } else {
        (64 - us.leading_zeros() as usize).min(BUCKETS - 1)
    }
}

/// Inclusive upper bound of a bucket, used as its representative value.
#[inline]
pub(crate) fn bucket_upper(b: usize) -> u64 {
    if b == 0 {
        0
    } else if b >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

impl LatencyHistogram {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one latency in microseconds.
    pub fn record_us(&mut self, us: u64) {
        self.buckets[bucket_of(us)] += 1;
        self.count += 1;
        self.sum_us = self.sum_us.saturating_add(us);
    }

    /// Record a `Duration`.
    pub fn record(&mut self, d: Duration) {
        self.record_us(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded latencies, microseconds.
    pub fn sum_us(&self) -> u64 {
        self.sum_us
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.sum_us.checked_div(self.count).unwrap_or(0)
    }

    /// The value at quantile `q` in `[0, 1]`, reported as the upper
    /// bound of the bucket containing it (0 when empty). Because
    /// buckets are powers of two, the result is within 2x of the true
    /// quantile.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return bucket_upper(b);
            }
        }
        bucket_upper(BUCKETS - 1)
    }

    pub fn p50_us(&self) -> u64 {
        self.quantile_us(0.50)
    }

    pub fn p95_us(&self) -> u64 {
        self.quantile_us(0.95)
    }

    pub fn p99_us(&self) -> u64 {
        self.quantile_us(0.99)
    }

    /// Raw per-bucket counts, for export into the registry.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.buckets
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_us = self.sum_us.saturating_add(other.sum_us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50_us(), 0);
        assert_eq!(h.p99_us(), 0);
        assert_eq!(h.mean_us(), 0);
    }

    #[test]
    fn buckets_cover_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 63);
    }

    #[test]
    fn quantiles_are_monotonic_and_bound_samples() {
        let mut h = LatencyHistogram::new();
        for us in [1u64, 2, 3, 10, 100, 1000, 10_000, 100_000] {
            h.record_us(us);
        }
        let (p50, p95, p99) = (h.p50_us(), h.p95_us(), h.p99_us());
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        // p50 of samples up to 100k must be >= the 4th sample (10 µs)
        // and the p99 bucket must contain the max sample.
        assert!(p50 >= 10);
        assert!(p99 >= 100_000);
        assert_eq!(h.count(), 8);
    }

    #[test]
    fn quantile_within_2x_of_exact() {
        let mut h = LatencyHistogram::new();
        for _ in 0..1000 {
            h.record_us(700);
        }
        let p50 = h.p50_us();
        // 700 lands in [512, 1024); upper bound 1023 is < 2x of 700.
        assert!((700..1400).contains(&p50), "p50 = {p50}");
    }

    #[test]
    fn merge_is_sum_of_parts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for us in [5u64, 50, 500] {
            a.record_us(us);
        }
        for us in [7u64, 70] {
            b.record_us(us);
        }
        let mut whole = LatencyHistogram::new();
        for us in [5u64, 50, 500, 7, 70] {
            whole.record_us(us);
        }
        a.merge(&b);
        assert_eq!(a, whole);
        assert_eq!(a.count(), 5);
        assert_eq!(a.sum_us(), 632);
    }

    #[test]
    fn record_duration_converts_to_us() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_millis(3));
        assert_eq!(h.sum_us(), 3000);
        assert_eq!(h.count(), 1);
    }
}
