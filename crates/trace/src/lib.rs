//! Structured event tracing for the HAMR engine.
//!
//! The engine (and the Hadoop baseline, the simulated fabric and the
//! simulated disks) emit [`TraceEvent`]s through a [`Tracer`] handle.
//! A tracer is either *disabled* — every emit is a single branch on a
//! `None`, so instrumented code costs nothing in normal runs — or bound
//! to a [`TraceSink`] such as [`RingSink`], a lock-light per-thread-lane
//! ring buffer.
//!
//! Collected events can be rendered two ways:
//! * [`chrome_trace_json`] — the Chrome trace-event JSON format, which
//!   loads directly into Perfetto / `chrome://tracing` as a per-node,
//!   per-worker timeline;
//! * [`render_summary`] — a plain-text per-flowlet table with task
//!   latency percentiles (from [`LatencyHistogram`]) and cumulative
//!   flow-control stall time.

pub mod audit;
pub mod causal;
mod chrome;
pub mod csv;
mod hist;
pub mod journal;
pub mod json;
pub mod registry;
pub mod stats;
mod summary;
mod telemetry;

pub use audit::{
    Audit, AuditBin, AuditReport, AuditRow, AuditStage, AuditViolation, CombineRow, FlightRecord,
    GaugeValue, RecordedEvent, StageCount, WatchdogTrip,
};
pub use causal::{
    analyze, render_attribution, render_critical_path, render_stall_edges, Buckets, CausalReport,
    CriticalPath, FlowletBuckets, NodeBuckets, StallEdge,
};
pub use chrome::{chrome_trace_json, chrome_trace_json_with_counters};
pub use csv::{csv_escape, push_csv_row};
pub use hist::LatencyHistogram;
pub use journal::{
    read_journal, JobSpan, Journal, JournalConfig, JournalMode, JournalRead, JournalRecord,
    Timeline,
};
pub use registry::{
    http_get, parse_prometheus, AlertEngine, AlertEvent, AlertKind, AlertRule, AlertState, Counter,
    HistSample, Histogram, HttpResponse, HttpServer, Labels, MetricsRegistry, PromSample,
    RouteHandler, SampleValue, SeriesSample, Snapshot,
};
pub use stats::{
    EdgeStatsSummary, HopKind, LineageHop, LineageSample, SketchSet, SpaceSaving, StatsMode,
    StatsPlane, StatsSnapshot,
};
pub use summary::{
    render_occupancy, render_summary, worker_occupancy, FlowletSummaryRow, WorkerOccupancyRow,
};
pub use telemetry::{Gauge, Sample, Telemetry, TimeSeries};

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Bin-lineage span identifiers. `0` means "no span" — the value bins
/// carry when tracing is disabled, so the hot path never touches the
/// global counter. Real spans start at 1 and are unique process-wide,
/// which keeps IDs unique across nodes (every simulated node lives in
/// this process) without any coordination at ship time.
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Mint a fresh non-zero span id for a bin.
pub fn next_span_id() -> u64 {
    NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed)
}

/// The "no span" sentinel carried by bins when tracing is off.
pub const NO_SPAN: u64 = 0;

/// Synthetic worker lanes for events not produced by a worker thread.
/// Real workers use their pool index (0, 1, ...).
pub const WORKER_RUNTIME: u32 = u32::MAX;
/// The network fabric / timer thread.
pub const WORKER_NET: u32 = u32::MAX - 1;
/// The disk model.
pub const WORKER_DISK: u32 = u32::MAX - 2;

/// What kind of task a `TaskStart`/`TaskEnd` span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskKind {
    /// HAMR loader split.
    LoaderSplit,
    /// HAMR stream-source epoch.
    StreamEpoch,
    /// One bin through a map flowlet.
    MapBin,
    /// One bin folded into partial-reduce accumulators.
    PartialFold,
    /// One bin ingested into reduce group state.
    ReduceIngest,
    /// One reduce fire shard (grouped iteration + user reduce).
    FireReduce,
    /// One partial-reduce finish batch.
    FirePartial,
    /// One scattered hot-key / migrated-shard bin folded into a skew
    /// absorber's per-key partials.
    SkewAbsorb,
    /// A MapReduce (baseline engine) map task.
    MrMap,
    /// A MapReduce (baseline engine) reduce task.
    MrReduce,
}

impl TaskKind {
    pub fn name(self) -> &'static str {
        match self {
            TaskKind::LoaderSplit => "loader-split",
            TaskKind::StreamEpoch => "stream-epoch",
            TaskKind::MapBin => "map-bin",
            TaskKind::PartialFold => "partial-fold",
            TaskKind::ReduceIngest => "reduce-ingest",
            TaskKind::FireReduce => "fire-reduce",
            TaskKind::FirePartial => "fire-partial",
            TaskKind::SkewAbsorb => "skew-absorb",
            TaskKind::MrMap => "mr-map",
            TaskKind::MrReduce => "mr-reduce",
        }
    }
}

/// The payload of one trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A worker began executing a task. `span` is the lineage span of
    /// the bin the task consumes (0 for tasks that consume no bin:
    /// loader splits, stream epochs, reduce/partial fires).
    TaskStart {
        task: TaskKind,
        flowlet: u32,
        span: u64,
    },
    /// The matching task finished.
    TaskEnd {
        task: TaskKind,
        flowlet: u32,
        records_in: u64,
        records_out: u64,
    },
    /// A producing task closed a full output bin destined for `dst` on
    /// `edge` and minted lineage span `span` for it. Emitted before any
    /// flow-control decision, so `BinEmitted → (FlowControlStall?) →
    /// BinShipped → BinIngress → TaskStart` is the per-bin chain.
    BinEmitted {
        flowlet: u32,
        edge: u32,
        dst: u32,
        span: u64,
        records: u32,
    },
    /// A bin left this node for `dst` on `edge`. `bytes` is the exact
    /// encoded frame payload size.
    BinShipped {
        flowlet: u32,
        edge: u32,
        dst: u32,
        records: u32,
        bytes: u64,
        span: u64,
    },
    /// A shipped bin arrived at its destination node's runtime and was
    /// queued for a consuming task (event node = receiver).
    BinIngress {
        flowlet: u32,
        edge: u32,
        from: u32,
        span: u64,
    },
    /// Flow control deferred a finished bin (window to `dst` full).
    FlowControlStall {
        flowlet: u32,
        edge: u32,
        dst: u32,
        span: u64,
    },
    /// A previously deferred bin finally shipped; `stalled_us` is how
    /// long it sat in the deferred queue.
    FlowControlResume {
        flowlet: u32,
        edge: u32,
        dst: u32,
        stalled_us: u64,
        span: u64,
    },
    /// Reduce state began spilling a shard to local disk.
    SpillStart { flowlet: u32 },
    /// The spill finished, having written `bytes`.
    SpillEnd { flowlet: u32, bytes: u64 },
    /// The fabric accepted a message for `to` (event node = sender).
    NetSend { to: u32, bytes: u64 },
    /// The fabric delivered a message from `from` (event node = receiver).
    NetDeliver { from: u32, bytes: u64 },
    /// A reduce flowlet fired, splitting into `shards` parallel shards.
    ReduceFire { flowlet: u32, shards: u32 },
    /// Work stealing: worker `thief` (the event's lane) took tasks from
    /// worker `victim`'s deque; the first stolen task belongs to
    /// `flowlet`.
    TaskStolen {
        thief: u32,
        victim: u32,
        flowlet: u32,
    },
    /// A worker found the node drained and is about to park.
    WorkerParked,
    /// The matching wake-up; `parked_us` is how long the worker slept.
    WorkerUnparked { parked_us: u64 },
    /// The disk model served a read.
    DiskRead { bytes: u64 },
    /// The disk model served a write.
    DiskWrite { bytes: u64 },
    /// The watchdog classified a run-health incident at monitoring
    /// epoch `epoch` (event node = the node the diagnosis points at,
    /// or 0 for cluster-wide incidents).
    Watchdog { class: WatchdogClass, epoch: u64 },
}

/// How the watchdog classified a no-progress (or skewed-progress)
/// window. Lives in the trace crate so the event stream, the flight
/// recorder and the doctor all share one vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WatchdogClass {
    /// Deferred bins exist and flow-control windows are full, but the
    /// fabric delivers nothing: a backpressure deadlock.
    Backpressure,
    /// Zero queued work, zero busy workers, zero deliveries — yet the
    /// job has not completed: something never signalled.
    Hang,
    /// The cluster is progressing but per-node progress is badly
    /// skewed: one or more nodes lag far behind.
    Straggler,
}

impl WatchdogClass {
    pub fn name(self) -> &'static str {
        match self {
            WatchdogClass::Backpressure => "backpressure",
            WatchdogClass::Hang => "hang",
            WatchdogClass::Straggler => "straggler",
        }
    }

    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "backpressure" => Some(WatchdogClass::Backpressure),
            "hang" => Some(WatchdogClass::Hang),
            "straggler" => Some(WatchdogClass::Straggler),
            _ => None,
        }
    }
}

/// One event: when, where, and what.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Microseconds since the tracer's epoch.
    pub t_us: u64,
    /// Cluster node the event happened on.
    pub node: u32,
    /// Worker lane: pool index, or one of the `WORKER_*` constants.
    pub worker: u32,
    pub kind: EventKind,
}

/// Destination for trace events. Implementations must tolerate
/// concurrent `record` calls from many threads.
pub trait TraceSink: Send + Sync {
    fn record(&self, ev: TraceEvent);
}

/// A sink that discards everything. Useful for measuring the overhead
/// of the instrumentation itself (timestamping without storage).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn record(&self, _ev: TraceEvent) {}
}

/// Lock-light bounded sink: events land in per-thread-lane ring
/// buffers, so concurrent workers rarely contend on the same mutex.
/// When a lane overflows its capacity the oldest events are dropped
/// (and counted), never the newest.
pub struct RingSink {
    lanes: Vec<Mutex<VecDeque<TraceEvent>>>,
    per_lane_capacity: usize,
    dropped: AtomicU64,
    /// Optional registry counter bumped alongside `dropped`, so lost
    /// trace events show up live in `/metrics` instead of warn-only.
    drop_mirror: Mutex<Option<Counter>>,
    /// Optional callback handed each event the ring is about to
    /// overwrite — the flight journal's continuous-persistence hook.
    /// Follows the `drop_mirror` shape: unset, overflow costs one
    /// mutex probe; set, the evicted event is offered to the tap
    /// before it is lost.
    overflow_tap: Mutex<Option<OverflowTap>>,
}

/// Callback offered each event the ring evicts on overflow — the
/// flight journal's continuous-persistence hook.
pub type OverflowTap = Arc<dyn Fn(&TraceEvent) + Send + Sync>;

/// Each OS thread gets a stable small integer used to pick its lane.
static NEXT_THREAD_SLOT: AtomicUsize = AtomicUsize::new(0);
thread_local! {
    static THREAD_SLOT: usize = NEXT_THREAD_SLOT.fetch_add(1, Ordering::Relaxed);
}

impl RingSink {
    /// `lanes` independent buffers of `per_lane_capacity` events each.
    pub fn new(lanes: usize, per_lane_capacity: usize) -> Self {
        assert!(lanes > 0 && per_lane_capacity > 0);
        RingSink {
            lanes: (0..lanes).map(|_| Mutex::new(VecDeque::new())).collect(),
            per_lane_capacity,
            dropped: AtomicU64::new(0),
            drop_mirror: Mutex::new(None),
            overflow_tap: Mutex::new(None),
        }
    }

    /// A comfortable default: 64 lanes of 64k events.
    pub fn with_default_capacity() -> Self {
        RingSink::new(64, 64 * 1024)
    }

    /// Events dropped due to lane overflow.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Mirror future drops into a registry counter (typically
    /// `trace_dropped_events_total`), making overflow visible in
    /// `/metrics` while the run is still going.
    pub fn mirror_drops(&self, counter: Counter) {
        *self.drop_mirror.lock().unwrap_or_else(|p| p.into_inner()) = Some(counter);
    }

    /// Install (or clear) the overflow tap: every event the ring
    /// evicts to make room is offered to `tap` before it is lost. The
    /// tap is called with no sink locks held, so it may itself emit
    /// trace events (the journal's segment mirror writes through
    /// traced simdisk) without re-entering a held lane lock.
    pub fn set_overflow_tap(&self, tap: Option<OverflowTap>) {
        *self.overflow_tap.lock().unwrap_or_else(|p| p.into_inner()) = tap;
    }

    /// Remove and return all buffered events, sorted by timestamp.
    pub fn drain(&self) -> Vec<TraceEvent> {
        let mut all = Vec::new();
        for lane in &self.lanes {
            let mut q = lane.lock().unwrap_or_else(|p| p.into_inner());
            all.extend(q.drain(..));
        }
        all.sort_by_key(|e| e.t_us);
        all
    }

    /// Copy out all buffered events without consuming them, sorted by
    /// timestamp — what the live `/doctor` endpoint reads mid-run,
    /// leaving the buffer intact for the post-mortem drain.
    pub fn peek(&self) -> Vec<TraceEvent> {
        let mut all = Vec::new();
        for lane in &self.lanes {
            let q = lane.lock().unwrap_or_else(|p| p.into_inner());
            all.extend(q.iter().cloned());
        }
        all.sort_by_key(|e| e.t_us);
        all
    }
}

impl TraceSink for RingSink {
    fn record(&self, ev: TraceEvent) {
        let slot = THREAD_SLOT.with(|s| *s);
        let mut evicted = None;
        {
            let mut q = self.lanes[slot % self.lanes.len()]
                .lock()
                .unwrap_or_else(|p| p.into_inner());
            if q.len() >= self.per_lane_capacity {
                evicted = q.pop_front();
                self.dropped.fetch_add(1, Ordering::Relaxed);
                if let Some(counter) = &*self.drop_mirror.lock().unwrap_or_else(|p| p.into_inner())
                {
                    counter.inc();
                }
            }
            q.push_back(ev);
        }
        // The tap runs with no lock held (lane or tap registration): a
        // journal tap may rotate a segment, whose mirror write into a
        // traced simdisk re-enters `record` on this same thread.
        if let Some(evicted) = evicted {
            let tap = self
                .overflow_tap
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .clone();
            if let Some(tap) = tap {
                tap(&evicted);
            }
        }
    }
}

/// Cheap, cloneable handle the engine threads carry around. All clones
/// share one epoch, so timestamps from different threads are on one
/// axis.
#[derive(Clone)]
pub struct Tracer {
    sink: Option<Arc<dyn TraceSink>>,
    epoch: Instant,
}

impl Tracer {
    /// A tracer that records into `sink`.
    pub fn new(sink: Arc<dyn TraceSink>) -> Self {
        Tracer {
            sink: Some(sink),
            epoch: Instant::now(),
        }
    }

    /// A tracer whose `emit` is a no-op (a single `None` check).
    pub fn disabled() -> Self {
        Tracer {
            sink: None,
            epoch: Instant::now(),
        }
    }

    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Microseconds since this tracer's epoch.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Record one event (no-op when disabled).
    #[inline]
    pub fn emit(&self, node: u32, worker: u32, kind: EventKind) {
        if let Some(sink) = &self.sink {
            sink.record(TraceEvent {
                t_us: self.now_us(),
                node,
                worker,
                kind,
            });
        }
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::disabled()
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        t.emit(0, 0, EventKind::DiskRead { bytes: 1 });
    }

    #[test]
    fn ring_sink_round_trip() {
        let sink = Arc::new(RingSink::new(4, 128));
        let t = Tracer::new(sink.clone());
        assert!(t.enabled());
        t.emit(
            1,
            2,
            EventKind::TaskStart {
                task: TaskKind::MapBin,
                flowlet: 3,
                span: NO_SPAN,
            },
        );
        t.emit(
            1,
            2,
            EventKind::TaskEnd {
                task: TaskKind::MapBin,
                flowlet: 3,
                records_in: 10,
                records_out: 7,
            },
        );
        let events = sink.drain();
        assert_eq!(events.len(), 2);
        assert!(events[0].t_us <= events[1].t_us);
        assert_eq!(events[0].node, 1);
        assert_eq!(events[0].worker, 2);
        assert_eq!(sink.dropped(), 0);
        assert!(sink.drain().is_empty(), "drain empties the sink");
    }

    #[test]
    fn ring_sink_drops_oldest_on_overflow() {
        let sink = RingSink::new(1, 4);
        for i in 0..10u64 {
            sink.record(TraceEvent {
                t_us: i,
                node: 0,
                worker: 0,
                kind: EventKind::DiskRead { bytes: i },
            });
        }
        assert_eq!(sink.dropped(), 6);
        let events = sink.drain();
        assert_eq!(events.len(), 4);
        // The *newest* events survive.
        assert!(matches!(
            events.last().unwrap().kind,
            EventKind::DiskRead { bytes: 9 }
        ));
    }

    #[test]
    fn concurrent_recording_loses_nothing_under_capacity() {
        let sink = Arc::new(RingSink::new(8, 10_000));
        let tracer = Tracer::new(sink.clone());
        let threads: Vec<_> = (0..8)
            .map(|w| {
                let tracer = tracer.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        tracer.emit(0, w, EventKind::DiskWrite { bytes: 1 });
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(sink.drain().len(), 8000);
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    fn clones_share_one_epoch() {
        let t = Tracer::new(Arc::new(NoopSink));
        let c = t.clone();
        let a = t.now_us();
        let b = c.now_us();
        assert!(b >= a);
        assert!(b - a < 1_000_000, "clone epochs diverged");
    }
}
