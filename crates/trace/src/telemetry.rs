//! Live telemetry: periodically sampled gauges.
//!
//! The event log answers "what happened"; gauges answer "how full was
//! everything while it happened". Engine components register named
//! [`Gauge`]s against a [`Telemetry`] handle and bump them from the hot
//! path; a background sampler thread snapshots every gauge on a fixed
//! interval (default 1ms) into an in-memory time series.
//!
//! Like [`crate::Tracer`], a disabled `Telemetry` is an `Option<Arc>`
//! that is `None`: `register` hands back a no-op gauge (one branch per
//! update) and the sampler thread is never started.

use crate::registry::{Labels, MetricsRegistry};
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A single sampled value cell. Cloning shares the cell. All updates
/// are relaxed atomics — gauges are statistics, not synchronization.
#[derive(Clone, Default)]
pub struct Gauge {
    cell: Option<Arc<AtomicI64>>,
}

impl Gauge {
    /// A gauge that ignores every update (what a disabled
    /// [`Telemetry`] hands out).
    pub fn disabled() -> Self {
        Gauge { cell: None }
    }

    /// A gauge over an existing cell — how the registry hands out
    /// gauges that share storage with telemetry-sampled ones.
    pub(crate) fn from_cell(cell: Arc<AtomicI64>) -> Self {
        Gauge { cell: Some(cell) }
    }

    #[inline]
    pub fn add(&self, delta: i64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(delta, Ordering::Relaxed);
        }
    }

    #[inline]
    pub fn sub(&self, delta: i64) {
        self.add(-delta);
    }

    #[inline]
    pub fn set(&self, value: i64) {
        if let Some(cell) = &self.cell {
            cell.store(value, Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> i64 {
        self.cell
            .as_ref()
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Gauge({})", self.get())
    }
}

struct GaugeSlot {
    name: String,
    /// Node the gauge belongs to (drives the Chrome counter-track pid);
    /// cluster-wide gauges use `u32::MAX`.
    node: u32,
    cell: Arc<AtomicI64>,
}

/// One sampler snapshot: every registered gauge's value at `t_us`.
/// `values[i]` corresponds to the i-th registered gauge *at sample
/// time*; gauges registered later simply have no value in earlier
/// samples (exporters pad with 0).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    pub t_us: u64,
    pub values: Vec<i64>,
}

/// A registry this telemetry mirrors its gauges into: every registered
/// gauge's *cell* is shared with a registry gauge series, so `/metrics`
/// sees live values with zero extra hot-path cost.
struct Bridge {
    registry: MetricsRegistry,
    engine: String,
}

impl Bridge {
    fn bind(&self, slot: &GaugeSlot) {
        let (metric, labels) = gauge_series(&slot.name, slot.node, &self.engine);
        self.registry
            .bind_gauge_cell(&metric, labels, Arc::clone(&slot.cell));
    }
}

/// Map a slash-scoped gauge name (`node0/f1/queue_depth`,
/// `net/inflight_bytes`) plus its owning node onto a registry series
/// name and label set.
fn gauge_series(name: &str, node: u32, engine: &str) -> (String, Labels) {
    let parts: Vec<&str> = name.split('/').collect();
    let mut labels = Labels::new().engine(engine);
    if node != u32::MAX {
        labels = labels.node(node);
    }
    let mut metric = String::new();
    for part in &parts[..parts.len().saturating_sub(1)] {
        if part
            .strip_prefix("node")
            .is_some_and(|n| !n.is_empty() && n.chars().all(|c| c.is_ascii_digit()))
        {
            continue; // the slot's node field already carries this
        }
        if let Some(f) = part.strip_prefix('f') {
            if !f.is_empty() && f.chars().all(|c| c.is_ascii_digit()) {
                labels = labels.flowlet(f.parse().unwrap_or(0));
                continue;
            }
        }
        for c in part.chars() {
            metric.push(if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            });
        }
        metric.push('_');
    }
    metric.push_str(parts.last().unwrap_or(&"gauge"));
    (metric, labels)
}

struct Inner {
    epoch: Instant,
    interval: Duration,
    gauges: Mutex<Vec<GaugeSlot>>,
    bridge: Mutex<Option<Bridge>>,
    samples: Mutex<Vec<Sample>>,
    stop: AtomicBool,
    /// Wakes the sampler out of its interval sleep so `stop` returns
    /// promptly even with a long interval (zero-duration runs).
    wake: Condvar,
    wake_lock: Mutex<()>,
    thread: Mutex<Option<JoinHandle<()>>>,
}

/// Cheap, cloneable handle; components call [`Telemetry::register`] at
/// setup and bump the returned gauges at runtime.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl Telemetry {
    /// A live telemetry collector sampling every `interval`.
    pub fn new(interval: Duration) -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                interval,
                gauges: Mutex::new(Vec::new()),
                bridge: Mutex::new(None),
                samples: Mutex::new(Vec::new()),
                stop: AtomicBool::new(false),
                wake: Condvar::new(),
                wake_lock: Mutex::new(()),
                thread: Mutex::new(None),
            })),
        }
    }

    /// The default 1ms sampler.
    pub fn with_default_interval() -> Self {
        Telemetry::new(Duration::from_millis(1))
    }

    /// A collector that registers no gauges and never samples.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Register a named gauge owned by `node` (pass `u32::MAX` for
    /// cluster-wide gauges). Disabled telemetry returns a no-op gauge.
    pub fn register(&self, node: u32, name: impl Into<String>) -> Gauge {
        match &self.inner {
            None => Gauge::disabled(),
            Some(inner) => {
                let cell = Arc::new(AtomicI64::new(0));
                let slot = GaugeSlot {
                    name: name.into(),
                    node,
                    cell: Arc::clone(&cell),
                };
                if let Some(bridge) = &*inner.bridge.lock().unwrap_or_else(|p| p.into_inner()) {
                    bridge.bind(&slot);
                }
                inner
                    .gauges
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .push(slot);
                Gauge { cell: Some(cell) }
            }
        }
    }

    /// Mirror every gauge — current and future — into `registry` as
    /// live gauge series labeled `engine`. The registry series share
    /// the telemetry cells, so updates cost nothing extra and
    /// `/metrics` always reads current values. Re-binding (a fresh run
    /// registering gauges under the same names) replaces the cells.
    pub fn bind_registry(&self, registry: &MetricsRegistry, engine: &str) {
        let Some(inner) = &self.inner else { return };
        let bridge = Bridge {
            registry: registry.clone(),
            engine: engine.to_string(),
        };
        for slot in inner
            .gauges
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
        {
            bridge.bind(slot);
        }
        *inner.bridge.lock().unwrap_or_else(|p| p.into_inner()) = Some(bridge);
    }

    /// Take one snapshot now. No-op when disabled. The sampler thread
    /// calls this on its interval; tests drive it manually via
    /// [`Telemetry::tick_at`] for deterministic timestamps.
    pub fn tick(&self) {
        if let Some(inner) = &self.inner {
            let t_us = inner.epoch.elapsed().as_micros() as u64;
            Self::sample_into(inner, t_us);
        }
    }

    /// Take one snapshot stamped with an explicit timestamp (for
    /// deterministic, manually-driven sampling in tests).
    pub fn tick_at(&self, t_us: u64) {
        if let Some(inner) = &self.inner {
            Self::sample_into(inner, t_us);
        }
    }

    fn sample_into(inner: &Inner, t_us: u64) {
        let values: Vec<i64> = inner
            .gauges
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
            .map(|g| g.cell.load(Ordering::Relaxed))
            .collect();
        inner
            .samples
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(Sample { t_us, values });
    }

    /// Start the background sampler thread. No-op when disabled or
    /// already running.
    pub fn start(&self) {
        let Some(inner) = &self.inner else { return };
        let mut slot = inner.thread.lock().unwrap_or_else(|p| p.into_inner());
        if slot.is_some() {
            return;
        }
        inner.stop.store(false, Ordering::Relaxed);
        let worker = Arc::clone(inner);
        *slot = Some(
            std::thread::Builder::new()
                .name("hamr-telemetry".into())
                .spawn(move || loop {
                    let guard = worker.wake_lock.lock().unwrap_or_else(|p| p.into_inner());
                    if worker.stop.load(Ordering::Relaxed) {
                        break;
                    }
                    drop(
                        worker
                            .wake
                            .wait_timeout(guard, worker.interval)
                            .unwrap_or_else(|p| p.into_inner()),
                    );
                    if worker.stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let t_us = worker.epoch.elapsed().as_micros() as u64;
                    Telemetry::sample_into(&worker, t_us);
                })
                .expect("spawn telemetry sampler thread"),
        );
    }

    /// Stop and join the sampler thread (takes one final sample so
    /// short runs always have at least one data point).
    pub fn stop(&self) {
        let Some(inner) = &self.inner else { return };
        {
            // Set the flag under the sampler's lock so the thread can
            // never recheck-then-sleep after we decide to stop.
            let _guard = inner.wake_lock.lock().unwrap_or_else(|p| p.into_inner());
            inner.stop.store(true, Ordering::Relaxed);
            inner.wake.notify_all();
        }
        let handle = inner
            .thread
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
        self.tick();
    }

    /// Snapshot every registered gauge's *current* value as
    /// `(name, node, value)` triples — what the watchdog reads each
    /// epoch and the flight recorder dumps at post-mortem time.
    pub fn gauge_values(&self) -> Vec<(String, u32, i64)> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => inner
                .gauges
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .iter()
                .map(|g| (g.name.clone(), g.node, g.cell.load(Ordering::Relaxed)))
                .collect(),
        }
    }

    /// Snapshot the collected series (gauge names + samples so far).
    pub fn series(&self) -> TimeSeries {
        match &self.inner {
            None => TimeSeries::default(),
            Some(inner) => {
                let gauges = inner.gauges.lock().unwrap_or_else(|p| p.into_inner());
                TimeSeries {
                    names: gauges.iter().map(|g| g.name.clone()).collect(),
                    nodes: gauges.iter().map(|g| g.node).collect(),
                    samples: inner
                        .samples
                        .lock()
                        .unwrap_or_else(|p| p.into_inner())
                        .clone(),
                }
            }
        }
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.enabled())
            .finish()
    }
}

/// The sampled gauge series, ready for export.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TimeSeries {
    pub names: Vec<String>,
    /// Owning node per gauge, aligned with `names` (`u32::MAX` =
    /// cluster-wide).
    pub nodes: Vec<u32>,
    pub samples: Vec<Sample>,
}

impl TimeSeries {
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty() || self.names.is_empty()
    }

    fn value(&self, sample: &Sample, gauge: usize) -> i64 {
        sample.values.get(gauge).copied().unwrap_or(0)
    }

    /// Wide CSV: one row per sample, one column per gauge.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let header = std::iter::once("t_us".to_string()).chain(self.names.iter().cloned());
        crate::csv::push_csv_row(&mut out, header);
        for sample in &self.samples {
            let row = std::iter::once(sample.t_us.to_string())
                .chain((0..self.names.len()).map(|g| self.value(sample, g).to_string()));
            crate::csv::push_csv_row(&mut out, row);
        }
        out
    }

    /// JSON object: `{"gauges": [...], "t_us": [...], "series": {name: [...]}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"gauges\":[");
        for (i, name) in self.names.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(&crate::json::escape(name));
            out.push('"');
        }
        out.push_str("],\"t_us\":[");
        for (i, sample) in self.samples.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&sample.t_us.to_string());
        }
        out.push_str("],\"series\":{");
        for (g, name) in self.names.iter().enumerate() {
            if g > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(&crate::json::escape(name));
            out.push_str("\":[");
            for (i, sample) in self.samples.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&self.value(sample, g).to_string());
            }
            out.push(']');
        }
        out.push_str("}}");
        out
    }

    /// Prometheus-style text exposition of the *final* sample. Gauge
    /// names like `node0/f1/queue_depth` become
    /// `hamr_queue_depth{node="0",flowlet="1"}`.
    pub fn to_prometheus(&self) -> String {
        let Some(last) = self.samples.last() else {
            return String::new();
        };
        let mut out = String::new();
        for (g, name) in self.names.iter().enumerate() {
            let (metric, labels) = prometheus_name(name);
            out.push_str("# TYPE hamr_");
            out.push_str(&metric);
            out.push_str(" gauge\nhamr_");
            out.push_str(&metric);
            out.push_str(&labels);
            out.push(' ');
            out.push_str(&self.value(last, g).to_string());
            out.push('\n');
        }
        out
    }
}

/// Escape a Prometheus label *value*: the exposition format requires
/// `\`, `"` and newlines inside quoted label values to be escaped.
pub(crate) fn prometheus_label_escape(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Split a `node0/f1/queue_depth`-style gauge name into a Prometheus
/// metric name and a label set.
fn prometheus_name(name: &str) -> (String, String) {
    let parts: Vec<&str> = name.split('/').collect();
    // Metric names allow only [a-zA-Z0-9_:]; anything else folds to '_'.
    let metric: String = parts
        .last()
        .unwrap_or(&"gauge")
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    let mut labels = Vec::new();
    for part in &parts[..parts.len().saturating_sub(1)] {
        if let Some(n) = part.strip_prefix("node") {
            labels.push(format!("node=\"{}\"", prometheus_label_escape(n)));
        } else if let Some(f) = part.strip_prefix('f') {
            if f.chars().all(|c| c.is_ascii_digit()) {
                labels.push(format!("flowlet=\"{f}\""));
                continue;
            }
            labels.push(format!("scope=\"{}\"", prometheus_label_escape(part)));
        } else {
            labels.push(format!("scope=\"{}\"", prometheus_label_escape(part)));
        }
    }
    let labels = if labels.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", labels.join(","))
    };
    (metric, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_telemetry_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.enabled());
        let g = t.register(0, "node0/whatever");
        g.add(5);
        assert_eq!(g.get(), 0);
        t.tick();
        t.start();
        t.stop();
        assert!(t.series().is_empty());
    }

    #[test]
    fn manual_ticks_capture_gauge_values() {
        let t = Telemetry::new(Duration::from_millis(1));
        let a = t.register(0, "node0/a");
        let b = t.register(1, "node1/b");
        a.set(3);
        t.tick_at(10);
        b.add(7);
        a.sub(1);
        t.tick_at(20);
        let series = t.series();
        assert_eq!(series.names, vec!["node0/a", "node1/b"]);
        assert_eq!(series.nodes, vec![0, 1]);
        assert_eq!(series.samples.len(), 2);
        assert_eq!(
            series.samples[0],
            Sample {
                t_us: 10,
                values: vec![3, 0]
            }
        );
        assert_eq!(
            series.samples[1],
            Sample {
                t_us: 20,
                values: vec![2, 7]
            }
        );
    }

    #[test]
    fn late_registration_pads_with_zero() {
        let t = Telemetry::new(Duration::from_millis(1));
        let a = t.register(0, "node0/a");
        a.set(1);
        t.tick_at(5);
        let b = t.register(0, "node0/b");
        b.set(9);
        t.tick_at(6);
        let csv = t.series().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "t_us,node0/a,node0/b");
        assert_eq!(lines[1], "5,1,0", "early sample padded for late gauge");
        assert_eq!(lines[2], "6,1,9");
    }

    #[test]
    fn exports_are_well_formed() {
        let t = Telemetry::new(Duration::from_millis(1));
        let g = t.register(2, "node2/f1/queue_depth");
        g.set(4);
        t.tick_at(100);
        let series = t.series();
        let json = crate::json::parse(&series.to_json()).expect("valid json");
        assert_eq!(
            json.get("gauges").and_then(|g| g.as_arr()).map(|a| a.len()),
            Some(1)
        );
        let prom = series.to_prometheus();
        assert!(prom.contains("hamr_queue_depth{node=\"2\",flowlet=\"1\"} 4"));
    }

    /// Determinism: the same gauge mutations and tick schedule produce
    /// byte-identical series — the property the deterministic SchedMode
    /// relies on when comparing profiled replays.
    #[test]
    fn identical_schedules_produce_identical_series() {
        let run = |seed: i64| {
            let t = Telemetry::new(Duration::from_millis(1));
            let q = t.register(0, "node0/f0/queue_depth");
            let w = t.register(1, "node1/window_inflight");
            let mut state = seed;
            for tick in 0..50u64 {
                // Seeded LCG drives the same mutation sequence per seed.
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                q.set((state % 17).abs());
                w.add((state % 5).abs());
                t.tick_at(tick * 100);
            }
            let s = t.series();
            (s.to_csv(), s.to_json(), s.to_prometheus())
        };
        assert_eq!(run(42), run(42), "same seed must replay identically");
        assert_ne!(run(42).0, run(43).0, "different seeds must differ");
    }

    #[test]
    fn gauge_values_snapshot_current_state() {
        let t = Telemetry::new(Duration::from_millis(1));
        let a = t.register(0, "node0/deferred_bins");
        let b = t.register(2, "node2/f1/queue_depth");
        a.set(5);
        b.set(-3);
        assert_eq!(
            t.gauge_values(),
            vec![
                ("node0/deferred_bins".to_string(), 0, 5),
                ("node2/f1/queue_depth".to_string(), 2, -3),
            ]
        );
        assert!(Telemetry::disabled().gauge_values().is_empty());
    }

    #[test]
    fn prometheus_escapes_label_values_and_sanitizes_metric_names() {
        let t = Telemetry::new(Duration::from_millis(1));
        // A hostile scope segment: quotes, backslash and newline in the
        // label value; quotes in the metric segment.
        t.register(0, "node0/disk \"a\\b\"/resident\nbytes");
        t.tick_at(1);
        let prom = t.series().to_prometheus();
        assert!(
            prom.contains("scope=\"disk \\\"a\\\\b\\\"\""),
            "label value must be escaped: {prom}"
        );
        assert!(
            prom.contains("hamr_resident_bytes"),
            "metric name must be sanitized: {prom}"
        );
        assert!(
            !prom
                .lines()
                .any(|l| !l.starts_with('#') && l.contains('\n')),
            "no raw newlines inside a sample line"
        );
    }

    #[test]
    fn zero_duration_run_produces_valid_empty_output() {
        // Sampler started and stopped before the interval elapses, with
        // no gauges registered: every export must still be well-formed.
        let t = Telemetry::new(Duration::from_secs(3600));
        t.start();
        t.stop();
        let series = t.series();
        assert!(series.is_empty());
        assert_eq!(series.names, Vec::<String>::new());
        let csv = series.to_csv();
        assert!(csv.starts_with("t_us"), "header-only CSV: {csv:?}");
        assert_eq!(series.to_prometheus(), "", "no gauges, no exposition");
        crate::json::parse(&series.to_json()).expect("empty series still valid json");
        // And with a gauge but zero samples (never started, never
        // ticked): same well-formedness guarantees.
        let t2 = Telemetry::new(Duration::from_secs(3600));
        t2.register(0, "node0/x");
        let s2 = t2.series();
        assert!(s2.samples.is_empty());
        assert_eq!(s2.to_prometheus(), "");
        assert_eq!(s2.to_csv(), "t_us,node0/x\n");
        crate::json::parse(&s2.to_json()).expect("valid json");
    }

    #[test]
    fn gauge_names_map_to_registry_series() {
        let engine = "hamr";
        let (m, l) = gauge_series("node0/f1/queue_depth", 0, engine);
        assert_eq!(m, "queue_depth");
        assert_eq!(l, Labels::new().engine("hamr").node(0).flowlet(1));
        let (m, l) = gauge_series("net/inflight_bytes", u32::MAX, engine);
        assert_eq!(m, "net_inflight_bytes");
        assert_eq!(l, Labels::new().engine("hamr"));
        let (m, l) = gauge_series("node3/disk_used_bytes", 3, engine);
        assert_eq!(m, "disk_used_bytes");
        assert_eq!(l, Labels::new().engine("hamr").node(3));
    }

    #[test]
    fn bridge_mirrors_existing_and_future_gauges() {
        use crate::registry::SampleValue;
        let t = Telemetry::new(Duration::from_millis(1));
        let early = t.register(0, "node0/deferred_bins");
        early.set(4);
        let registry = MetricsRegistry::new();
        t.bind_registry(&registry, "hamr");
        // Pre-existing gauge visible through the registry, live.
        let labels = Labels::new().engine("hamr").node(0);
        assert!(matches!(
            registry.snapshot().get("deferred_bins", &labels),
            Some(SampleValue::Gauge(4))
        ));
        early.add(2);
        assert!(matches!(
            registry.snapshot().get("deferred_bins", &labels),
            Some(SampleValue::Gauge(6))
        ));
        // Gauges registered after binding are mirrored too.
        let late = t.register(2, "node2/f1/queue_depth");
        late.set(-9);
        let late_labels = Labels::new().engine("hamr").node(2).flowlet(1);
        assert!(matches!(
            registry.snapshot().get("queue_depth", &late_labels),
            Some(SampleValue::Gauge(-9))
        ));
        // A fresh run re-registering the same name replaces the cell.
        let rerun = t.register(0, "node0/deferred_bins");
        rerun.set(1);
        assert!(matches!(
            registry.snapshot().get("deferred_bins", &labels),
            Some(SampleValue::Gauge(1))
        ));
        // Disabled telemetry binds nothing and doesn't panic.
        Telemetry::disabled().bind_registry(&registry, "hamr");
    }

    #[test]
    fn background_sampler_starts_and_stops() {
        let t = Telemetry::new(Duration::from_micros(200));
        let g = t.register(0, "node0/x");
        g.set(11);
        t.start();
        t.start(); // idempotent
        std::thread::sleep(Duration::from_millis(5));
        t.stop();
        let series = t.series();
        assert!(!series.is_empty(), "sampler collected at least one sample");
        assert!(series.samples.iter().all(|s| s.values == vec![11]));
        let n = series.samples.len();
        t.tick();
        assert_eq!(t.series().samples.len(), n + 1, "manual tick after stop");
    }
}
