//! Data-plane statistics: streaming sketches over the records that
//! actually flow, not just the tasks that move them.
//!
//! Every (edge, destination-partition) pair carries a [`SketchSet`]:
//!
//! * [`Hll`] — a HyperLogLog distinct-key estimator with a fixed
//!   2^12 = 4096 registers (4 KiB, standard error 1.04/√4096 ≈ 1.6%),
//!   fed the 64-bit key hash the frame already carries — zero re-hash;
//! * [`SpaceSaving`] — the Metwally et al. top-K heavy-hitter sketch
//!   with the guaranteed-count invariant `count − err ≤ true ≤ count`,
//!   parameterized by capacity so the same code serves the stats plane
//!   (K = 32, with key-byte samples for naming) and the skew splitter's
//!   per-task hot-key sketch (capacity 1024, hashes only);
//! * [`SizeHist`] — a log2 histogram of record value sizes answering
//!   quantile queries to within a power of two.
//!
//! All three merge associatively across partitions and nodes, so a
//! job-wide per-edge profile is a fold, not a re-scan. The sketches
//! are observers: they never influence routing, so runs with stats on
//! and off are byte-identical.
//!
//! [`StatsPlane`] is the per-job runtime container the engine updates
//! at `TaskOutput::close_bin` time (once per finished bin, one mutex
//! acquisition amortized over the whole bin). Under
//! `HAMR_STATS=full[:N]` it also keeps a deterministic 1-in-N
//! hash-gated record lineage sample: every hop a sampled key's bins
//! take (emit, scatter, absorber re-emit, reduce ingest) appends a
//! [`LineageHop`], and the resulting [`LineageSample`]s travel with the
//! [`StatsSnapshot`] into the journal where `hamr explain` can replay
//! the path offline.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// `HAMR_STATS` gate: how much of the data plane to measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StatsMode {
    /// No sketches, no lineage — the plane is never allocated.
    Off,
    /// Per-(edge, dst) sketches only (the default).
    #[default]
    Edges,
    /// Sketches plus 1-in-`sample_one_in` hash-gated record lineage.
    Full {
        /// Sample a key iff `hash % sample_one_in == 0` (1 = every key).
        sample_one_in: u64,
    },
}

impl StatsMode {
    /// Parse `HAMR_STATS=off|edges|full|full:<N>`. Unset or
    /// unrecognized values fall back to the default (`edges`).
    pub fn from_env_str(s: Option<&str>) -> Self {
        match s {
            Some("off") | Some("0") | Some("none") => StatsMode::Off,
            Some("full") => StatsMode::Full {
                sample_one_in: DEFAULT_SAMPLE_ONE_IN,
            },
            Some(v) if v.starts_with("full:") => {
                let n = v["full:".len()..]
                    .parse::<u64>()
                    .unwrap_or(DEFAULT_SAMPLE_ONE_IN);
                StatsMode::Full {
                    sample_one_in: n.max(1),
                }
            }
            _ => StatsMode::Edges,
        }
    }

    pub fn enabled(self) -> bool {
        self != StatsMode::Off
    }

    /// `Some(N)` when lineage sampling is on.
    pub fn lineage_one_in(self) -> Option<u64> {
        match self {
            StatsMode::Full { sample_one_in } => Some(sample_one_in),
            _ => None,
        }
    }
}

/// Default lineage sampling rate under plain `HAMR_STATS=full`.
pub const DEFAULT_SAMPLE_ONE_IN: u64 = 64;

/// The deterministic lineage gate: the same key hash answers the same
/// way at every hop on every node, so a sampled record is recognized
/// everywhere it goes without carrying a wire tag.
#[inline]
pub fn sample_hit(hash: u64, one_in: u64) -> bool {
    one_in <= 1 || hash.is_multiple_of(one_in)
}

// --------------------------------------------------------------------------
// HyperLogLog
// --------------------------------------------------------------------------

/// Register-count exponent: 2^12 registers.
const HLL_P: u32 = 12;
const HLL_M: usize = 1 << HLL_P;

/// HyperLogLog distinct estimator over pre-hashed 64-bit keys.
#[derive(Clone)]
pub struct Hll {
    regs: Box<[u8; HLL_M]>,
}

impl Default for Hll {
    fn default() -> Self {
        Hll::new()
    }
}

impl Hll {
    pub fn new() -> Self {
        Hll {
            regs: Box::new([0u8; HLL_M]),
        }
    }

    /// Observe one (already well-mixed) 64-bit hash.
    #[inline]
    pub fn insert(&mut self, hash: u64) {
        let idx = (hash >> (64 - HLL_P)) as usize;
        // Rank of the first set bit in the remaining 52 bits, 1-based;
        // an all-zero suffix saturates at 53.
        let w = hash << HLL_P;
        let rank = if w == 0 {
            (64 - HLL_P + 1) as u8
        } else {
            w.leading_zeros() as u8 + 1
        };
        if rank > self.regs[idx] {
            self.regs[idx] = rank;
        }
    }

    /// The standard-error of the estimate: 1.04/√m ≈ 1.63%.
    pub fn standard_error() -> f64 {
        1.04 / (HLL_M as f64).sqrt()
    }

    /// Cardinality estimate with the linear-counting small-range
    /// correction (which makes small cardinalities essentially exact).
    pub fn estimate(&self) -> f64 {
        let m = HLL_M as f64;
        let alpha = 0.7213 / (1.0 + 1.079 / m);
        let mut sum = 0.0f64;
        let mut zeros = 0usize;
        for &r in self.regs.iter() {
            sum += 1.0 / ((1u64 << r.min(63)) as f64);
            if r == 0 {
                zeros += 1;
            }
        }
        let raw = alpha * m * m / sum;
        if raw <= 2.5 * m && zeros > 0 {
            m * (m / zeros as f64).ln()
        } else {
            raw
        }
    }

    pub fn distinct(&self) -> u64 {
        self.estimate().round() as u64
    }

    /// Register-wise max: exact, associative, commutative, idempotent.
    pub fn merge(&mut self, other: &Hll) {
        for (a, b) in self.regs.iter_mut().zip(other.regs.iter()) {
            if *b > *a {
                *a = *b;
            }
        }
    }

    pub fn is_empty(&self) -> bool {
        self.regs.iter().all(|&r| r == 0)
    }

    #[cfg(test)]
    pub(crate) fn registers(&self) -> &[u8] {
        &self.regs[..]
    }
}

impl std::fmt::Debug for Hll {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hll")
            .field("distinct", &self.distinct())
            .finish()
    }
}

// --------------------------------------------------------------------------
// SpaceSaving heavy hitters
// --------------------------------------------------------------------------

/// Longest key-byte prefix a sketch entry or lineage sample retains.
pub const KEY_SAMPLE_BYTES: usize = 48;

/// One tracked heavy-hitter slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SsEntry {
    pub hash: u64,
    /// Overestimate of the key's true weight.
    pub count: u64,
    /// Maximum overestimation: `count - err` is a guaranteed floor.
    pub err: u64,
    /// First-seen key bytes (truncated), when the caller supplies them.
    pub key: Option<Box<[u8]>>,
}

/// SpaceSaving top-K sketch over pre-hashed keys, with the classic
/// guarantee `count − err ≤ true-count ≤ count` for every tracked key,
/// and every key of true weight > total/capacity guaranteed present.
#[derive(Debug, Clone)]
pub struct SpaceSaving {
    cap: usize,
    entries: Vec<SsEntry>,
    index: BTreeMap<u64, usize>,
    /// Total observed weight (for share-of-traffic queries).
    total: u64,
}

impl SpaceSaving {
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0);
        SpaceSaving {
            cap,
            entries: Vec::with_capacity(cap),
            index: BTreeMap::new(),
            total: 0,
        }
    }

    pub fn capacity(&self) -> usize {
        self.cap
    }

    pub fn total(&self) -> u64 {
        self.total
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Observe `hash` with weight `w`; `key` (if given) is sampled into
    /// the slot the first time the hash claims it.
    pub fn observe(&mut self, hash: u64, key: Option<&[u8]>, w: u64) {
        self.total += w;
        if let Some(&i) = self.index.get(&hash) {
            self.entries[i].count += w;
            if self.entries[i].key.is_none() {
                if let Some(k) = key {
                    self.entries[i].key = Some(truncate_key(k));
                }
            }
            return;
        }
        if self.entries.len() < self.cap {
            self.index.insert(hash, self.entries.len());
            self.entries.push(SsEntry {
                hash,
                count: w,
                err: 0,
                key: key.map(truncate_key),
            });
            return;
        }
        // Evict the minimum-count slot (ties broken by hash for
        // determinism); the newcomer inherits its count as error.
        let mut vi = 0;
        for (i, e) in self.entries.iter().enumerate() {
            let v = &self.entries[vi];
            if (e.count, e.hash) < (v.count, v.hash) {
                vi = i;
            }
        }
        let old = self.entries[vi].clone();
        self.index.remove(&old.hash);
        self.index.insert(hash, vi);
        self.entries[vi] = SsEntry {
            hash,
            count: old.count + w,
            err: old.count,
            key: key.map(truncate_key),
        };
    }

    /// `(count, err)` for a tracked hash.
    pub fn get(&self, hash: u64) -> Option<(u64, u64)> {
        self.index
            .get(&hash)
            .map(|&i| (self.entries[i].count, self.entries[i].err))
    }

    /// Guaranteed lower bound on a tracked hash's true weight (0 when
    /// untracked).
    pub fn guaranteed(&self, hash: u64) -> u64 {
        self.get(hash)
            .map(|(c, e)| c.saturating_sub(e))
            .unwrap_or(0)
    }

    /// Entries sorted by count descending (ties by hash ascending):
    /// the canonical top-K view.
    pub fn top(&self) -> Vec<SsEntry> {
        let mut v = self.entries.clone();
        v.sort_by(|a, b| b.count.cmp(&a.count).then(a.hash.cmp(&b.hash)));
        v
    }

    /// Merge another sketch in. For hashes present in both, counts and
    /// errors add exactly. A hash present in only one sketch may have
    /// been evicted by the other — its count there is at most that
    /// sketch's minimum, which is added to both count and error so the
    /// guaranteed-count invariant survives the merge. Commutative
    /// always; associative (and exact) whenever no eviction occurred.
    pub fn merge(&mut self, other: &SpaceSaving) {
        let min_self = if self.entries.len() >= self.cap {
            self.entries.iter().map(|e| e.count).min().unwrap_or(0)
        } else {
            0
        };
        let min_other = if other.entries.len() >= other.cap {
            other.entries.iter().map(|e| e.count).min().unwrap_or(0)
        } else {
            0
        };
        let mut merged: BTreeMap<u64, SsEntry> = BTreeMap::new();
        for e in &self.entries {
            merged.insert(e.hash, e.clone());
        }
        for e in other.entries.iter() {
            match merged.get_mut(&e.hash) {
                Some(m) => {
                    m.count += e.count;
                    m.err += e.err;
                    if m.key.is_none() {
                        m.key = e.key.clone();
                    }
                }
                None => {
                    let mut n = e.clone();
                    n.count += min_self;
                    n.err += min_self;
                    merged.insert(e.hash, n);
                }
            }
        }
        // Keys the other sketch never saw (or evicted) get its minimum
        // as slack.
        for e in &self.entries {
            if !other.index.contains_key(&e.hash) {
                let m = merged.get_mut(&e.hash).expect("seeded above");
                m.count += min_other;
                m.err += min_other;
            }
        }
        let mut all: Vec<SsEntry> = merged.into_values().collect();
        all.sort_by(|a, b| b.count.cmp(&a.count).then(a.hash.cmp(&b.hash)));
        all.truncate(self.cap);
        self.entries = all;
        self.index = self
            .entries
            .iter()
            .enumerate()
            .map(|(i, e)| (e.hash, i))
            .collect();
        self.total += other.total;
    }
}

fn truncate_key(k: &[u8]) -> Box<[u8]> {
    k[..k.len().min(KEY_SAMPLE_BYTES)]
        .to_vec()
        .into_boxed_slice()
}

// --------------------------------------------------------------------------
// Log2 value-size histogram
// --------------------------------------------------------------------------

const SIZE_BUCKETS: usize = 64;

/// Log2 histogram over record value sizes: bucket `i` holds sizes in
/// `[2^i, 2^(i+1))` (bucket 0 also takes size 0). Quantiles come back
/// as the inclusive upper bound of the answering bucket, so they are
/// exact to within a factor of two and monotone in `q` by construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SizeHist {
    buckets: [u64; SIZE_BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for SizeHist {
    fn default() -> Self {
        SizeHist::new()
    }
}

impl SizeHist {
    pub fn new() -> Self {
        SizeHist {
            buckets: [0u64; SIZE_BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    #[inline]
    pub fn record(&mut self, size: u64) {
        let b = 63 - (size | 1).leading_zeros() as usize;
        self.buckets[b] += 1;
        self.count += 1;
        self.sum += size;
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Inclusive upper bound of the bucket containing the q-quantile
    /// (`0.0 ≤ q ≤ 1.0`); 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
            }
        }
        u64::MAX
    }

    /// Bucket-wise sum: exact, associative, commutative.
    pub fn merge(&mut self, other: &SizeHist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

// --------------------------------------------------------------------------
// SketchSet
// --------------------------------------------------------------------------

/// Heavy-hitter capacity on stats-plane edges.
pub const STATS_TOP_K: usize = 32;

/// The per-(edge, dst-partition) bundle: distinct keys, heavy hitters,
/// and value-size quantiles, all from one pass over already-hashed
/// records.
#[derive(Debug, Clone)]
pub struct SketchSet {
    pub records: u64,
    pub bytes: u64,
    pub hll: Hll,
    pub topk: SpaceSaving,
    pub sizes: SizeHist,
}

impl Default for SketchSet {
    fn default() -> Self {
        SketchSet::new(STATS_TOP_K)
    }
}

impl SketchSet {
    pub fn new(top_k: usize) -> Self {
        SketchSet {
            records: 0,
            bytes: 0,
            hll: Hll::new(),
            topk: SpaceSaving::new(top_k),
            sizes: SizeHist::new(),
        }
    }

    /// Observe one record: its in-frame hash, key bytes (sampled into
    /// the heavy-hitter slot), and value size.
    #[inline]
    pub fn observe(&mut self, hash: u64, key: &[u8], value_len: usize) {
        self.records += 1;
        self.bytes += (key.len() + value_len) as u64;
        self.hll.insert(hash);
        self.topk.observe(hash, Some(key), 1);
        self.sizes.record(value_len as u64);
    }

    pub fn distinct(&self) -> u64 {
        self.hll.distinct()
    }

    /// Share of observed traffic guaranteed to belong to the single
    /// hottest key (0.0 when empty).
    pub fn hot_share(&self) -> f64 {
        if self.records == 0 {
            return 0.0;
        }
        let top = self.topk.top();
        match top.first() {
            Some(e) => e.count.saturating_sub(e.err) as f64 / self.records as f64,
            None => 0.0,
        }
    }

    pub fn merge(&mut self, other: &SketchSet) {
        self.records += other.records;
        self.bytes += other.bytes;
        self.hll.merge(&other.hll);
        self.topk.merge(&other.topk);
        self.sizes.merge(&other.sizes);
    }

    /// Condense into the serializable per-edge summary.
    pub fn summary(&self, edge: u32, shuffle: bool) -> EdgeStatsSummary {
        let top = self
            .topk
            .top()
            .into_iter()
            .take(8)
            .map(|e| TopKey {
                hash: e.hash,
                count: e.count,
                err: e.err,
                key: e.key.map(|k| k.to_vec()).unwrap_or_default(),
            })
            .collect();
        EdgeStatsSummary {
            edge,
            shuffle,
            records: self.records,
            bytes: self.bytes,
            distinct: self.distinct(),
            hot_share: self.hot_share(),
            top,
            p50: self.sizes.quantile(0.50),
            p90: self.sizes.quantile(0.90),
            p99: self.sizes.quantile(0.99),
        }
    }
}

// --------------------------------------------------------------------------
// Snapshot types (what the journal persists and /stats serves)
// --------------------------------------------------------------------------

/// One heavy hitter in a summary: hash, count bounds, and a key-byte
/// sample for naming it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopKey {
    pub hash: u64,
    pub count: u64,
    pub err: u64,
    pub key: Vec<u8>,
}

/// A job-wide per-edge profile: sketches merged across every
/// destination partition.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeStatsSummary {
    pub edge: u32,
    /// True for hash-exchange (shuffle) edges — the ones whose distinct
    /// count is comparable across engines.
    pub shuffle: bool,
    pub records: u64,
    pub bytes: u64,
    pub distinct: u64,
    pub hot_share: f64,
    pub top: Vec<TopKey>,
    /// Value-size quantiles (inclusive log2-bucket upper bounds).
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
}

/// What kind of hop a sampled record's bin took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HopKind {
    /// A normal emit onto an edge.
    Emit,
    /// The skew splitter scattered the hot key round-robin.
    Scatter,
    /// An absorber re-emitted merged per-key partials.
    Merged,
    /// A reduce task ingested the bin (the path's terminus).
    Reduce,
    /// A skew absorber folded the scattered bin.
    Absorb,
}

impl HopKind {
    pub fn as_u8(self) -> u8 {
        match self {
            HopKind::Emit => 0,
            HopKind::Scatter => 1,
            HopKind::Merged => 2,
            HopKind::Reduce => 3,
            HopKind::Absorb => 4,
        }
    }

    pub fn from_u8(v: u8) -> Option<HopKind> {
        Some(match v {
            0 => HopKind::Emit,
            1 => HopKind::Scatter,
            2 => HopKind::Merged,
            3 => HopKind::Reduce,
            4 => HopKind::Absorb,
            _ => return None,
        })
    }

    pub fn name(self) -> &'static str {
        match self {
            HopKind::Emit => "emit",
            HopKind::Scatter => "scatter",
            HopKind::Merged => "re-emit",
            HopKind::Reduce => "reduce",
            HopKind::Absorb => "absorb",
        }
    }
}

/// One hop of a sampled record: which flowlet moved it, over which
/// edge, from which node to which, and how (normal emit, hot-key
/// scatter, absorber re-emit, reduce ingest).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineageHop {
    pub kind: HopKind,
    pub flowlet: u32,
    pub flowlet_name: String,
    pub edge: u32,
    pub src: u32,
    pub dst: u32,
    /// Occurrences of the sampled key in the bin this hop covers.
    pub records: u32,
}

/// A sampled key and every hop its records took through the job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineageSample {
    pub hash: u64,
    /// First-seen key bytes (truncated to [`KEY_SAMPLE_BYTES`]).
    pub key: Vec<u8>,
    pub hops: Vec<LineageHop>,
}

/// The per-job stats record: merged per-edge summaries plus lineage
/// samples. Persisted to the journal (tag 8) and served by `/stats`.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    pub job: String,
    pub engine: String,
    pub edges: Vec<EdgeStatsSummary>,
    pub samples: Vec<LineageSample>,
}

impl StatsSnapshot {
    /// Largest distinct-key estimate across shuffle edges — "how many
    /// keys did this job actually move between partitions".
    pub fn shuffle_distinct(&self) -> u64 {
        self.edges
            .iter()
            .filter(|e| e.shuffle)
            .map(|e| e.distinct)
            .max()
            .unwrap_or(0)
    }

    /// Hot-key traffic share on the busiest shuffle edge.
    pub fn shuffle_hot_share(&self) -> f64 {
        self.edges
            .iter()
            .filter(|e| e.shuffle && e.records > 0)
            .max_by_key(|e| e.records)
            .map(|e| e.hot_share)
            .unwrap_or(0.0)
    }

    /// Find a sample whose key bytes match any of the candidate
    /// encodings (exact match), or whose hash matches.
    pub fn find_sample(&self, needles: &[Vec<u8>], hash: Option<u64>) -> Option<&LineageSample> {
        self.samples
            .iter()
            .find(|s| needles.iter().any(|n| n == &s.key) || hash == Some(s.hash))
    }

    /// Render as JSON for the `/stats` endpoint and scrape artifacts.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"job\":\"");
        out.push_str(&crate::json::escape(&self.job));
        out.push_str("\",\"engine\":\"");
        out.push_str(&crate::json::escape(&self.engine));
        out.push_str("\",\"edges\":[");
        for (i, e) in self.edges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"edge\":{},\"shuffle\":{},\"records\":{},\"bytes\":{},\"distinct\":{},\"hot_share\":{:.4},\"p50\":{},\"p90\":{},\"p99\":{},\"top\":[",
                e.edge, e.shuffle, e.records, e.bytes, e.distinct, e.hot_share, e.p50, e.p90, e.p99
            ));
            for (j, t) in e.top.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"key\":\"{}\",\"hash\":{},\"count\":{},\"err\":{}}}",
                    crate::json::escape(&format_key(&t.key)),
                    t.hash,
                    t.count,
                    t.err
                ));
            }
            out.push_str("]}");
        }
        out.push_str("],\"samples\":[");
        for (i, s) in self.samples.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"key\":\"{}\",\"hash\":{},\"hops\":[",
                crate::json::escape(&format_key(&s.key)),
                s.hash
            ));
            for (j, h) in s.hops.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"kind\":\"{}\",\"flowlet\":\"{}\",\"edge\":{},\"src\":{},\"dst\":{},\"records\":{}}}",
                    h.kind.name(),
                    crate::json::escape(&h.flowlet_name),
                    h.edge,
                    h.src,
                    h.dst,
                    h.records
                ));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

/// Decode one LEB128 varint from the front of `bytes`: (value, bytes
/// consumed). Mirrors the codec crate's integer wire format without
/// depending on it (the stats layer stays dep-free).
fn read_leb128(bytes: &[u8]) -> Option<(u64, usize)> {
    let mut v = 0u64;
    let mut shift = 0u32;
    for (i, b) in bytes.iter().enumerate().take(10) {
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Some((v, i + 1));
        }
        shift += 7;
    }
    None
}

/// Encode a value as a LEB128 varint (the codec crate's integer wire
/// format).
fn write_leb128(mut v: u64, out: &mut Vec<u8>) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

/// Human-readable key rendering for the wire encodings the workload
/// codecs produce: length-prefixed UTF-8 strings come back verbatim,
/// varint integers as `u64:N`; raw printable UTF-8 and 4/8-byte
/// little-endian integers cover custom codecs; anything else is hex.
pub fn format_key(key: &[u8]) -> String {
    if key.is_empty() {
        return "<empty>".into();
    }
    // Length-prefixed string: varint len + exactly len UTF-8 bytes.
    if let Some((len, n)) = read_leb128(key) {
        if len > 0 && n + len as usize == key.len() {
            if let Ok(s) = std::str::from_utf8(&key[n..]) {
                if s.chars().all(|c| !c.is_control()) {
                    return s.to_string();
                }
            }
        }
    }
    if let Ok(s) = std::str::from_utf8(key) {
        if s.chars().all(|c| !c.is_control()) {
            return s.to_string();
        }
    }
    // A lone varint consuming the whole buffer: an integer key.
    if let Some((v, n)) = read_leb128(key) {
        if n == key.len() {
            return format!("u64:{v}");
        }
    }
    match key.len() {
        4 => format!("u32:{}", u32::from_le_bytes(key.try_into().unwrap())),
        8 => format!("u64:{}", u64::from_le_bytes(key.try_into().unwrap())),
        _ => {
            let mut s = String::from("0x");
            for b in key.iter().take(16) {
                s.push_str(&format!("{b:02x}"));
            }
            if key.len() > 16 {
                s.push('…');
            }
            s
        }
    }
}

/// Candidate byte encodings for a user-typed key query: the codec
/// crate's wire formats first (length-prefixed UTF-8, LEB128 varint
/// for integers), then raw UTF-8 and little-endian u32/u64/i64 for
/// custom codecs.
pub fn key_query_encodings(query: &str) -> Vec<Vec<u8>> {
    let mut out = vec![query.as_bytes().to_vec()];
    // Length-prefixed string encoding (String/&str keys).
    let mut prefixed = Vec::with_capacity(query.len() + 2);
    write_leb128(query.len() as u64, &mut prefixed);
    prefixed.extend_from_slice(query.as_bytes());
    out.push(prefixed);
    if let Ok(v) = query.parse::<u64>() {
        let mut varint = Vec::with_capacity(10);
        write_leb128(v, &mut varint);
        out.push(varint);
        out.push((v as u32).to_le_bytes().to_vec());
        out.push(v.to_le_bytes().to_vec());
    }
    if let Ok(v) = query.parse::<i64>() {
        // Signed integers ride the codec's zigzag varint.
        let mut zigzag = Vec::with_capacity(10);
        write_leb128(((v << 1) ^ (v >> 63)) as u64, &mut zigzag);
        if !out.contains(&zigzag) {
            out.push(zigzag);
        }
        let le = v.to_le_bytes().to_vec();
        if !out.contains(&le) {
            out.push(le);
        }
    }
    if let Some(hex) = query.strip_prefix("0x") {
        if hex.len() % 2 == 0 {
            if let Ok(bytes) = (0..hex.len())
                .step_by(2)
                .map(|i| u8::from_str_radix(&hex[i..i + 2], 16))
                .collect::<Result<Vec<u8>, _>>()
            {
                out.push(bytes);
            }
        }
    }
    out
}

/// Render one sample's path the way `hamr explain` prints it.
pub fn render_explain(job: &str, sample: &LineageSample) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "key {} (hash {:#018x}) in job '{}':\n",
        format_key(&sample.key),
        sample.hash,
        job
    ));
    let mut split_seen = false;
    for h in &sample.hops {
        let arrow = match h.kind {
            HopKind::Emit => "emitted",
            HopKind::Scatter => {
                split_seen = true;
                "SCATTERED (hot-key split)"
            }
            HopKind::Merged => "re-emitted (absorber merge)",
            HopKind::Reduce => "ingested by reduce",
            HopKind::Absorb => "absorbed (skew partials)",
        };
        out.push_str(&format!(
            "  {} via flowlet '{}' edge {}: node {} -> node {} ({} record{})\n",
            arrow,
            h.flowlet_name,
            h.edge,
            h.src,
            h.dst,
            h.records,
            if h.records == 1 { "" } else { "s" }
        ));
    }
    let reducer = sample
        .hops
        .iter()
        .rev()
        .find(|h| matches!(h.kind, HopKind::Reduce | HopKind::Absorb))
        .map(|h| h.dst);
    match reducer {
        Some(n) => out.push_str(&format!("  final reducer: node {n}\n")),
        None => out.push_str("  final reducer: (no consume hop recorded)\n"),
    }
    if split_seen {
        out.push_str("  path crossed the skew splitter: scatter -> absorb -> re-emit\n");
    }
    out
}

// --------------------------------------------------------------------------
// StatsPlane — the per-job runtime container
// --------------------------------------------------------------------------

/// Most lineage samples kept per job.
pub const MAX_LINEAGE_SAMPLES: usize = 256;
/// Most hops kept per sample.
pub const MAX_LINEAGE_HOPS: usize = 96;

/// Per-job runtime stats container: one [`SketchSet`] per
/// (edge, destination partition), plus the lineage sample map. Shared
/// `Arc` across every node's workers; each slot has its own mutex, so
/// contention is per-(edge, dst), and each bin close locks exactly
/// once.
pub struct StatsPlane {
    mode: StatsMode,
    parts: usize,
    slots: Vec<Mutex<SketchSet>>,
    /// Edges whose keys are eligible for lineage sampling. Loader
    /// edges carry synthetic line-offset keys that would otherwise
    /// fill the sample budget before any shuffle key arrives.
    sampled_edges: Vec<bool>,
    lineage: Mutex<BTreeMap<u64, LineageSample>>,
}

impl StatsPlane {
    pub fn new(edges: usize, parts: usize, mode: StatsMode) -> Self {
        let parts = parts.max(1);
        let n = edges.max(1) * parts;
        StatsPlane {
            mode,
            parts,
            slots: (0..n).map(|_| Mutex::new(SketchSet::default())).collect(),
            sampled_edges: Vec::new(),
            lineage: Mutex::new(BTreeMap::new()),
        }
    }

    /// Restrict lineage sampling to the flagged edges (the cluster
    /// passes its hash-exchange map). Edges beyond the slice — and
    /// every edge when this is never called — stay eligible.
    pub fn with_sampled_edges(mut self, flags: &[bool]) -> Self {
        self.sampled_edges = flags.to_vec();
        self
    }

    fn edge_sampled(&self, edge: u32) -> bool {
        self.sampled_edges
            .get(edge as usize)
            .copied()
            .unwrap_or(true)
    }

    pub fn mode(&self) -> StatsMode {
        self.mode
    }

    pub fn lineage_on(&self) -> bool {
        self.mode.lineage_one_in().is_some()
    }

    fn slot(&self, edge: u32, dst: u32) -> &Mutex<SketchSet> {
        let i = edge as usize * self.parts + (dst as usize % self.parts);
        &self.slots[i.min(self.slots.len() - 1)]
    }

    /// Fold one finished bin into the (edge, dst) sketch slot and, when
    /// lineage is on, append a hop for every sampled key in the bin.
    /// `iter` yields `(hash, key-bytes, value-len)` straight from the
    /// frame — the hash is the one computed at emit, never recomputed.
    #[allow(clippy::too_many_arguments)]
    pub fn fold_bin<'a>(
        &self,
        edge: u32,
        dst: u32,
        kind: HopKind,
        flowlet: u32,
        flowlet_name: &str,
        src: u32,
        iter: impl Iterator<Item = (u64, &'a [u8], usize)>,
    ) {
        let one_in = self
            .mode
            .lineage_one_in()
            .filter(|_| self.edge_sampled(edge));
        // (hash, key, occurrences) for sampled keys in this bin.
        let mut sampled: Vec<(u64, Vec<u8>, u32)> = Vec::new();
        {
            let mut set = self
                .slot(edge, dst)
                .lock()
                .unwrap_or_else(|p| p.into_inner());
            for (hash, key, vlen) in iter {
                set.observe(hash, key, vlen);
                if let Some(n) = one_in {
                    if sample_hit(hash, n) {
                        match sampled.iter_mut().find(|(h, _, _)| *h == hash) {
                            Some((_, _, c)) => *c += 1,
                            None => sampled.push((
                                hash,
                                key[..key.len().min(KEY_SAMPLE_BYTES)].to_vec(),
                                1,
                            )),
                        }
                    }
                }
            }
        }
        if sampled.is_empty() {
            return;
        }
        let mut lineage = self.lineage.lock().unwrap_or_else(|p| p.into_inner());
        for (hash, key, records) in sampled {
            let entry = match lineage.get_mut(&hash) {
                Some(e) => e,
                None => {
                    if lineage.len() >= MAX_LINEAGE_SAMPLES {
                        continue;
                    }
                    lineage.entry(hash).or_insert(LineageSample {
                        hash,
                        key,
                        hops: Vec::new(),
                    })
                }
            };
            if entry.hops.len() < MAX_LINEAGE_HOPS {
                entry.hops.push(LineageHop {
                    kind,
                    flowlet,
                    flowlet_name: flowlet_name.to_string(),
                    edge,
                    src,
                    dst,
                    records,
                });
            }
        }
    }

    /// Record a consume-side hop (reduce ingest / skew absorb) for
    /// every already-sampled hash in the bin. Emit-side hops always
    /// precede consumption, so only known hashes are updated — no new
    /// samples originate here.
    #[allow(clippy::too_many_arguments)]
    pub fn consume_bin(
        &self,
        edge: u32,
        node: u32,
        kind: HopKind,
        flowlet: u32,
        flowlet_name: &str,
        src: u32,
        hashes: impl Iterator<Item = u64>,
    ) {
        let Some(n) = self.mode.lineage_one_in() else {
            return;
        };
        let mut hits: Vec<(u64, u32)> = Vec::new();
        for h in hashes {
            if sample_hit(h, n) {
                match hits.iter_mut().find(|(x, _)| *x == h) {
                    Some((_, c)) => *c += 1,
                    None => hits.push((h, 1)),
                }
            }
        }
        if hits.is_empty() {
            return;
        }
        let mut lineage = self.lineage.lock().unwrap_or_else(|p| p.into_inner());
        for (hash, records) in hits {
            if let Some(entry) = lineage.get_mut(&hash) {
                if entry.hops.len() < MAX_LINEAGE_HOPS {
                    entry.hops.push(LineageHop {
                        kind,
                        flowlet,
                        flowlet_name: flowlet_name.to_string(),
                        edge,
                        src,
                        dst: node,
                        records,
                    });
                }
            }
        }
    }

    /// Per-(edge, dst) summary numbers for gauge publication:
    /// `(records, distinct, hot_share)`; `None` for untouched slots.
    pub fn slot_stats(&self, edge: u32, dst: u32) -> Option<(u64, u64, f64)> {
        let set = self
            .slot(edge, dst)
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        if set.records == 0 {
            return None;
        }
        Some((set.records, set.distinct(), set.hot_share()))
    }

    /// Merge every destination's sketches per edge and build the
    /// serializable snapshot. `shuffle_edges[e]` marks hash-exchange
    /// edges (comparable across engines).
    pub fn snapshot(&self, job: &str, engine: &str, shuffle_edges: &[bool]) -> StatsSnapshot {
        let edges_n = self.slots.len() / self.parts;
        let mut edges = Vec::new();
        for e in 0..edges_n {
            let mut merged = SketchSet::default();
            for d in 0..self.parts {
                let set = self.slots[e * self.parts + d]
                    .lock()
                    .unwrap_or_else(|p| p.into_inner());
                if set.records > 0 {
                    merged.merge(&set);
                }
            }
            if merged.records == 0 {
                continue;
            }
            let shuffle = shuffle_edges.get(e).copied().unwrap_or(false);
            edges.push(merged.summary(e as u32, shuffle));
        }
        let samples = self
            .lineage
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .values()
            .cloned()
            .collect();
        StatsSnapshot {
            job: job.to_string(),
            engine: engine.to_string(),
            edges,
            samples,
        }
    }
}

impl std::fmt::Debug for StatsPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StatsPlane")
            .field("mode", &self.mode)
            .field("slots", &self.slots.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix(x: u64) -> u64 {
        // splitmix64 finalizer — the tests' stand-in for stable_hash.
        let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[test]
    fn hll_small_cardinalities_are_exact() {
        let mut h = Hll::new();
        for i in 0..5u64 {
            for _ in 0..100 {
                h.insert(mix(i));
            }
        }
        assert_eq!(h.distinct(), 5);
    }

    #[test]
    fn hll_large_cardinality_within_three_sigma() {
        let mut h = Hll::new();
        let n = 100_000u64;
        for i in 0..n {
            h.insert(mix(i));
        }
        let est = h.estimate();
        let bound = 3.0 * Hll::standard_error() * n as f64;
        assert!(
            (est - n as f64).abs() <= bound,
            "estimate {est} off from {n} by more than {bound}"
        );
    }

    #[test]
    fn hll_merge_is_register_max() {
        let mut a = Hll::new();
        let mut b = Hll::new();
        for i in 0..1000u64 {
            a.insert(mix(i));
            b.insert(mix(i + 500));
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.registers(), ba.registers());
        let est = ab.estimate();
        assert!((est - 1500.0).abs() < 1500.0 * 0.05, "union estimate {est}");
    }

    #[test]
    fn spacesaving_tracks_heavy_hitter_exactly_under_capacity() {
        let mut s = SpaceSaving::new(8);
        for _ in 0..100 {
            s.observe(1, Some(b"hot"), 1);
        }
        for i in 2..6u64 {
            s.observe(i, None, 1);
        }
        assert_eq!(s.get(1), Some((100, 0)));
        assert_eq!(s.guaranteed(1), 100);
        let top = s.top();
        assert_eq!(top[0].hash, 1);
        assert_eq!(top[0].key.as_deref(), Some(&b"hot"[..]));
    }

    #[test]
    fn spacesaving_invariant_survives_eviction() {
        let mut s = SpaceSaving::new(4);
        let mut truth = std::collections::HashMap::new();
        for i in 0..1000u64 {
            let k = i % 13;
            s.observe(k, None, 1);
            *truth.entry(k).or_insert(0u64) += 1;
        }
        for e in s.top() {
            let t = truth[&e.hash];
            assert!(e.count >= t, "count {} < true {t}", e.count);
            assert!(
                e.count - e.err <= t,
                "guaranteed {} > true {t}",
                e.count - e.err
            );
        }
    }

    #[test]
    fn size_hist_quantiles_are_monotone_and_bracketing() {
        let mut h = SizeHist::new();
        for s in [0u64, 1, 7, 8, 100, 1000, 5000] {
            h.record(s);
        }
        let mut prev = 0;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = h.quantile(q);
            assert!(v >= prev, "quantile({q}) = {v} < {prev}");
            prev = v;
        }
        assert!(h.quantile(1.0) >= 5000);
        assert!(h.quantile(0.0) <= 1);
    }

    #[test]
    fn sample_gate_is_deterministic() {
        for h in 0..1000u64 {
            assert_eq!(sample_hit(h, 7), sample_hit(h, 7));
            assert!(sample_hit(h, 1));
        }
    }

    #[test]
    fn plane_folds_bins_and_records_lineage() {
        let plane = StatsPlane::new(2, 4, StatsMode::Full { sample_one_in: 1 });
        let key = b"k1".to_vec();
        let h = mix(1);
        plane.fold_bin(
            1,
            2,
            HopKind::Emit,
            0,
            "mapper",
            0,
            vec![(h, &key[..], 10), (h, &key[..], 12)].into_iter(),
        );
        plane.consume_bin(1, 2, HopKind::Reduce, 1, "reducer", 0, vec![h].into_iter());
        let snap = plane.snapshot("job", "hamr", &[false, true]);
        assert_eq!(snap.edges.len(), 1);
        assert_eq!(snap.edges[0].edge, 1);
        assert!(snap.edges[0].shuffle);
        assert_eq!(snap.edges[0].records, 2);
        assert_eq!(snap.edges[0].distinct, 1);
        assert_eq!(snap.samples.len(), 1);
        let s = &snap.samples[0];
        assert_eq!(s.key, key);
        assert_eq!(s.hops.len(), 2);
        assert_eq!(s.hops[0].kind, HopKind::Emit);
        assert_eq!(s.hops[0].records, 2);
        assert_eq!(s.hops[1].kind, HopKind::Reduce);
        let text = render_explain("job", s);
        assert!(text.contains("reduce"), "{text}");
        assert!(snap.to_json().contains("\"edges\""));
    }

    #[test]
    fn key_queries_cover_codec_encodings() {
        let enc = key_query_encodings("5");
        assert!(enc.contains(&b"5".to_vec()));
        assert!(enc.contains(&5u32.to_le_bytes().to_vec()));
        assert!(enc.contains(&5u64.to_le_bytes().to_vec()));
        assert!(key_query_encodings("0x0102").contains(&vec![1u8, 2]));
    }
}
