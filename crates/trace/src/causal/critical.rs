//! Critical-path extraction over the span graph.
//!
//! Starting from the last task to finish, walk producer links
//! backwards: a task that consumed bin `s` causally waited on the
//! `BinEmitted` for `s`, which happened inside some producer task on
//! another (or the same) node. Each hop contributes segments to the
//! path, bucketed the same way as the attribution sweep:
//!
//! ```text
//! consumer: [start ........ end]          → compute
//!   queue:  [ingress .. start]            → queue (delivered, waiting
//!                                            for a worker)
//!   net:    [shipped .. ingress]          → net
//!   stall:  [emitted .. shipped]          → stall if flow control
//!                                            deferred the bin, else
//!                                            queue (outbuf wait)
//! producer: [start .. emitted]            → compute … and recurse
//! ```
//!
//! Tasks with no consumed span (reduce fires, loader splits) fall back
//! to the latest earlier task end on the same (node, flowlet) — the
//! ingest that armed the fire — or, failing that, the latest earlier
//! task end anywhere (phase barriers in the MapReduce baseline).

use super::lineage::Lineage;

/// The job's critical path, bucketed by segment kind (microseconds).
#[derive(Debug, Clone, Copy, Default)]
pub struct CriticalPath {
    /// Sum of all segments — the modeled lower bound on wall time.
    pub total_us: u64,
    pub compute_us: u64,
    pub net_us: u64,
    /// Flow-control deferral on the path.
    pub stall_us: u64,
    /// Delivered-but-not-yet-running (scheduler queue) plus
    /// producer-side waits not recorded as flow-control stalls.
    pub queue_us: u64,
    /// Producer→consumer hops walked.
    pub hops: u32,
}

pub(super) fn critical_path(lineage: &Lineage) -> CriticalPath {
    let mut cp = CriticalPath::default();
    let Some(last) = lineage
        .tasks
        .iter()
        .enumerate()
        .max_by_key(|(_, t)| t.end_us)
        .map(|(i, _)| i)
    else {
        return cp;
    };

    let mut visited = std::collections::HashSet::new();
    let mut cur = last;
    // The instant up to which the current task's compute counts: the
    // full task for the path head, the emit instant for producers.
    let mut horizon = lineage.tasks[last].end_us;
    while visited.insert(cur) && cp.hops < 100_000 {
        let task = lineage.tasks[cur];
        let start = task.start_us.min(horizon);
        cp.compute_us += horizon - start;

        let consumed = (task.span != 0)
            .then(|| lineage.spans.get(&task.span))
            .flatten();
        if let Some(rec) = consumed {
            if let Some((emit_t, node, lane)) = rec.emitted {
                let ship_t = rec.shipped.map(|(t, _)| t).unwrap_or(emit_t);
                let in_t = rec.ingress.map(|(t, _)| t).unwrap_or(ship_t);
                cp.queue_us += start.saturating_sub(in_t.min(start));
                let net = in_t.min(start).saturating_sub(ship_t.min(start));
                cp.net_us += net;
                let pre_ship = ship_t.min(start).saturating_sub(emit_t.min(start));
                if rec.stall_at.is_some() {
                    cp.stall_us += pre_ship;
                } else {
                    cp.queue_us += pre_ship;
                }
                if let Some(producer) = lineage.task_at(node, lane, emit_t) {
                    cp.hops += 1;
                    horizon = emit_t.min(start);
                    cur = producer;
                    continue;
                }
                // Producer task unknown (e.g. emitted from the runtime
                // lane at flush): stop here.
                break;
            }
            break;
        }
        // No consumed bin: find the task that armed this one.
        let same_flowlet = lineage
            .tasks
            .iter()
            .enumerate()
            .filter(|(i, t)| {
                *i != cur && t.node == task.node && t.flowlet == task.flowlet && t.end_us <= start
            })
            .max_by_key(|(_, t)| t.end_us)
            .map(|(i, _)| i);
        let pred = same_flowlet.or_else(|| {
            lineage
                .tasks
                .iter()
                .enumerate()
                .filter(|(i, t)| *i != cur && t.end_us <= start && !visited.contains(i))
                .max_by_key(|(_, t)| t.end_us)
                .map(|(i, _)| i)
        });
        match pred {
            Some(p) => {
                let p_end = lineage.tasks[p].end_us.min(start);
                cp.queue_us += start - p_end;
                cp.hops += 1;
                horizon = p_end;
                cur = p;
            }
            None => break,
        }
    }
    cp.total_us = cp.compute_us + cp.net_us + cp.stall_us + cp.queue_us;
    cp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EventKind, TaskKind, TraceEvent};

    fn ev(t_us: u64, node: u32, worker: u32, kind: EventKind) -> TraceEvent {
        TraceEvent {
            t_us,
            node,
            worker,
            kind,
        }
    }

    #[test]
    fn two_hop_path_buckets_segments() {
        // Producer computes 0..10 (emits at 8), bin stalls 8..14, ships
        // at 14, arrives 20, consumer runs 26..30.
        let events = vec![
            ev(
                0,
                0,
                0,
                EventKind::TaskStart {
                    task: TaskKind::MapBin,
                    flowlet: 0,
                    span: 0,
                },
            ),
            ev(
                8,
                0,
                0,
                EventKind::BinEmitted {
                    flowlet: 0,
                    edge: 0,
                    dst: 1,
                    span: 7,
                    records: 1,
                },
            ),
            ev(
                8,
                0,
                0,
                EventKind::FlowControlStall {
                    flowlet: 0,
                    edge: 0,
                    dst: 1,
                    span: 7,
                },
            ),
            ev(
                10,
                0,
                0,
                EventKind::TaskEnd {
                    task: TaskKind::MapBin,
                    flowlet: 0,
                    records_in: 1,
                    records_out: 1,
                },
            ),
            ev(
                14,
                0,
                0,
                EventKind::BinShipped {
                    flowlet: 0,
                    edge: 0,
                    dst: 1,
                    records: 1,
                    bytes: 10,
                    span: 7,
                },
            ),
            ev(
                20,
                1,
                0,
                EventKind::BinIngress {
                    flowlet: 1,
                    edge: 0,
                    from: 0,
                    span: 7,
                },
            ),
            ev(
                26,
                1,
                0,
                EventKind::TaskStart {
                    task: TaskKind::ReduceIngest,
                    flowlet: 1,
                    span: 7,
                },
            ),
            ev(
                30,
                1,
                0,
                EventKind::TaskEnd {
                    task: TaskKind::ReduceIngest,
                    flowlet: 1,
                    records_in: 1,
                    records_out: 0,
                },
            ),
        ];
        let lineage = Lineage::build(&events);
        let cp = critical_path(&lineage);
        assert_eq!(cp.hops, 1);
        assert_eq!(cp.compute_us, 4 + 8, "consumer 26..30 + producer 0..8");
        assert_eq!(cp.queue_us, 6, "ingress 20 → start 26");
        assert_eq!(cp.net_us, 6, "ship 14 → ingress 20");
        assert_eq!(cp.stall_us, 6, "emit 8 → ship 14, stalled");
        assert_eq!(cp.total_us, 30);
    }
}
