//! Reconstruct per-bin lineage chains and per-lane task spans from a
//! raw event log.
//!
//! Every bin minted under tracing carries a unique span id through
//! `BinEmitted → (FlowControlStall → FlowControlResume)? → BinShipped →
//! BinIngress → TaskStart`, so one pass over the sorted event log
//! recovers, for each bin, where it was produced, how long flow control
//! held it, when the fabric delivered it, and which task consumed it.

use crate::{EventKind, TaskKind, TraceEvent, WORKER_DISK};
use std::collections::HashMap;

/// One matched `TaskStart`/`TaskEnd` pair on a worker lane.
#[derive(Debug, Clone, Copy)]
pub struct TaskSpan {
    pub node: u32,
    pub lane: u32,
    pub flowlet: u32,
    pub task: TaskKind,
    /// Span of the bin this task consumed (0 if none).
    pub span: u64,
    pub start_us: u64,
    pub end_us: u64,
}

/// Everything known about one bin's journey.
#[derive(Debug, Clone, Default)]
pub struct SpanRecord {
    pub span: u64,
    pub flowlet: u32,
    pub edge: u32,
    pub dst: u32,
    pub records: u32,
    /// (t, node, lane) of the producing `BinEmitted`.
    pub emitted: Option<(u64, u32, u32)>,
    /// `FlowControlStall` timestamp, if the bin was deferred.
    pub stall_at: Option<u64>,
    /// `stalled_us` from the matching `FlowControlResume`.
    pub stalled_us: Option<u64>,
    /// (t, bytes) of `BinShipped`.
    pub shipped: Option<(u64, u64)>,
    /// (t, node) of `BinIngress` at the receiver.
    pub ingress: Option<(u64, u32)>,
    /// Index into [`Lineage::tasks`] of the consuming task.
    pub consumed_by: Option<usize>,
}

impl SpanRecord {
    /// A chain that went all the way from producer to consumer.
    pub fn is_complete(&self) -> bool {
        self.emitted.is_some() && self.consumed_by.is_some()
    }
}

/// The reconstructed span graph.
#[derive(Debug, Default)]
pub struct Lineage {
    pub spans: HashMap<u64, SpanRecord>,
    /// All matched task spans, in event order.
    pub tasks: Vec<TaskSpan>,
    /// Task indices per (node, lane), sorted by start time.
    pub lanes: HashMap<(u32, u32), Vec<usize>>,
}

impl Lineage {
    /// Build from a timestamp-sorted event log.
    pub fn build(events: &[TraceEvent]) -> Lineage {
        let mut lineage = Lineage::default();
        // Open task stack per (node, lane): (task, flowlet, span, start).
        type OpenStack = Vec<(TaskKind, u32, u64, u64)>;
        let mut open: HashMap<(u32, u32), OpenStack> = HashMap::new();
        for ev in events {
            let key = (ev.node, ev.worker);
            match ev.kind {
                EventKind::TaskStart {
                    task,
                    flowlet,
                    span,
                } if ev.worker < WORKER_DISK => {
                    open.entry(key)
                        .or_default()
                        .push((task, flowlet, span, ev.t_us));
                }
                EventKind::TaskEnd { task, flowlet, .. } if ev.worker < WORKER_DISK => {
                    let stack = open.entry(key).or_default();
                    if let Some(pos) = stack
                        .iter()
                        .rposition(|(t, f, _, _)| *t == task && *f == flowlet)
                    {
                        let (task, flowlet, span, start_us) = stack.remove(pos);
                        let idx = lineage.tasks.len();
                        lineage.tasks.push(TaskSpan {
                            node: ev.node,
                            lane: ev.worker,
                            flowlet,
                            task,
                            span,
                            start_us,
                            end_us: ev.t_us.max(start_us),
                        });
                        if span != 0 {
                            lineage.span_mut(span).consumed_by = Some(idx);
                        }
                    }
                }
                EventKind::BinEmitted {
                    flowlet,
                    edge,
                    dst,
                    span,
                    records,
                } => {
                    let rec = lineage.span_mut(span);
                    rec.flowlet = flowlet;
                    rec.edge = edge;
                    rec.dst = dst;
                    rec.records = records;
                    rec.emitted = Some((ev.t_us, ev.node, ev.worker));
                }
                EventKind::BinShipped { span, bytes, .. } if span != 0 => {
                    lineage.span_mut(span).shipped = Some((ev.t_us, bytes));
                }
                EventKind::BinIngress { span, .. } if span != 0 => {
                    lineage.span_mut(span).ingress = Some((ev.t_us, ev.node));
                }
                EventKind::FlowControlStall { span, .. } if span != 0 => {
                    lineage.span_mut(span).stall_at = Some(ev.t_us);
                }
                EventKind::FlowControlResume {
                    span, stalled_us, ..
                } if span != 0 => {
                    lineage.span_mut(span).stalled_us = Some(stalled_us);
                }
                _ => {}
            }
        }
        for (idx, task) in lineage.tasks.iter().enumerate() {
            lineage
                .lanes
                .entry((task.node, task.lane))
                .or_default()
                .push(idx);
        }
        for indices in lineage.lanes.values_mut() {
            indices.sort_by_key(|&i| lineage.tasks[i].start_us);
        }
        lineage
    }

    fn span_mut(&mut self, span: u64) -> &mut SpanRecord {
        self.spans.entry(span).or_insert_with(|| SpanRecord {
            span,
            ..SpanRecord::default()
        })
    }

    /// The task on `(node, lane)` whose span contains instant `t`.
    pub fn task_at(&self, node: u32, lane: u32, t: u64) -> Option<usize> {
        let indices = self.lanes.get(&(node, lane))?;
        // Last task starting at or before `t` that is still open at `t`.
        let mut best = None;
        for &i in indices {
            let task = &self.tasks[i];
            if task.start_us <= t && t <= task.end_us {
                best = Some(i);
            } else if task.start_us > t {
                break;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t_us: u64, node: u32, worker: u32, kind: EventKind) -> TraceEvent {
        TraceEvent {
            t_us,
            node,
            worker,
            kind,
        }
    }

    #[test]
    fn reconstructs_full_chain() {
        let events = vec![
            ev(
                0,
                0,
                1,
                EventKind::TaskStart {
                    task: TaskKind::MapBin,
                    flowlet: 1,
                    span: 0,
                },
            ),
            ev(
                5,
                0,
                1,
                EventKind::BinEmitted {
                    flowlet: 1,
                    edge: 2,
                    dst: 3,
                    span: 42,
                    records: 100,
                },
            ),
            ev(
                6,
                0,
                1,
                EventKind::FlowControlStall {
                    flowlet: 1,
                    edge: 2,
                    dst: 3,
                    span: 42,
                },
            ),
            ev(
                9,
                0,
                1,
                EventKind::FlowControlResume {
                    flowlet: 1,
                    edge: 2,
                    dst: 3,
                    stalled_us: 3,
                    span: 42,
                },
            ),
            ev(
                9,
                0,
                1,
                EventKind::BinShipped {
                    flowlet: 1,
                    edge: 2,
                    dst: 3,
                    records: 100,
                    bytes: 800,
                    span: 42,
                },
            ),
            ev(
                10,
                0,
                1,
                EventKind::TaskEnd {
                    task: TaskKind::MapBin,
                    flowlet: 1,
                    records_in: 100,
                    records_out: 100,
                },
            ),
            ev(
                14,
                3,
                0,
                EventKind::BinIngress {
                    flowlet: 2,
                    edge: 2,
                    from: 0,
                    span: 42,
                },
            ),
            ev(
                20,
                3,
                0,
                EventKind::TaskStart {
                    task: TaskKind::ReduceIngest,
                    flowlet: 2,
                    span: 42,
                },
            ),
            ev(
                25,
                3,
                0,
                EventKind::TaskEnd {
                    task: TaskKind::ReduceIngest,
                    flowlet: 2,
                    records_in: 100,
                    records_out: 0,
                },
            ),
        ];
        let lineage = Lineage::build(&events);
        assert_eq!(lineage.tasks.len(), 2);
        let rec = &lineage.spans[&42];
        assert!(rec.is_complete());
        assert_eq!(rec.emitted, Some((5, 0, 1)));
        assert_eq!(rec.stall_at, Some(6));
        assert_eq!(rec.stalled_us, Some(3));
        assert_eq!(rec.shipped, Some((9, 800)));
        assert_eq!(rec.ingress, Some((14, 3)));
        let consumer = &lineage.tasks[rec.consumed_by.unwrap()];
        assert_eq!(consumer.task, TaskKind::ReduceIngest);
        assert_eq!(consumer.node, 3);
        // The producer task contains the emit instant.
        let producer = lineage.task_at(0, 1, 5).unwrap();
        assert_eq!(lineage.tasks[producer].task, TaskKind::MapBin);
    }
}
