//! Causal profiling: turn a raw event log into an explanation.
//!
//! [`analyze`] reconstructs bin lineage ([`lineage::Lineage`]), runs
//! the exact wall-time partition ([`attribution`]) and extracts the
//! critical path ([`critical`]), producing a [`CausalReport`] that can
//! be rendered as text tables or JSON.

pub mod attribution;
pub mod critical;
pub mod lineage;

pub use attribution::{Buckets, FlowletBuckets, NodeBuckets, StallEdge};
pub use critical::CriticalPath;
pub use lineage::{Lineage, SpanRecord, TaskSpan};

use crate::TraceEvent;

/// The full causal-profiling report for one job run.
#[derive(Debug, Clone, Default)]
pub struct CausalReport {
    /// Event-log window (first / last event timestamp, microseconds).
    pub t0_us: u64,
    pub t1_us: u64,
    /// `t1 - t0`.
    pub wall_us: u64,
    /// Worker lanes observed across the cluster.
    pub lanes: u32,
    /// Lane-summed buckets over all nodes;
    /// `total.total() == lanes × wall_us` exactly.
    pub total: Buckets,
    pub per_node: Vec<NodeBuckets>,
    pub per_flowlet: Vec<FlowletBuckets>,
    /// (edge, dst) flow-control slots ranked by cumulative stall.
    pub stall_edges: Vec<StallEdge>,
    pub critical_path: CriticalPath,
    /// Bins that got a lineage span.
    pub spans_seen: u64,
    /// Spans whose full produce→consume chain was recovered.
    pub spans_complete: u64,
    /// Events the sink dropped — when > 0 the report is built on a
    /// truncated log and every number below is suspect.
    pub dropped_events: u64,
}

impl CausalReport {
    /// Bucket shares of total lane time, in bucket order
    /// (compute, disk, stall, net, idle). Zero when the log is empty.
    pub fn shares(&self) -> [f64; 5] {
        let total = self.total.total();
        if total == 0 {
            return [0.0; 5];
        }
        let t = total as f64;
        [
            self.total.compute_us as f64 / t,
            self.total.disk_us as f64 / t,
            self.total.stall_us as f64 / t,
            self.total.net_us as f64 / t,
            self.total.idle_us as f64 / t,
        ]
    }

    /// Serialize the whole report as a JSON object.
    pub fn to_json(&self) -> String {
        let shares = self.shares();
        let mut out = format!(
            "{{\"wall_us\":{},\"t0_us\":{},\"t1_us\":{},\"lanes\":{},\
             \"dropped_events\":{},\"spans_seen\":{},\"spans_complete\":{},",
            self.wall_us,
            self.t0_us,
            self.t1_us,
            self.lanes,
            self.dropped_events,
            self.spans_seen,
            self.spans_complete
        );
        out.push_str(&format!(
            "\"shares\":{{\"compute\":{:.6},\"disk\":{:.6},\"stall\":{:.6},\
             \"net\":{:.6},\"idle\":{:.6}}},",
            shares[0], shares[1], shares[2], shares[3], shares[4]
        ));
        let b = |b: &Buckets| {
            format!(
                "{{\"compute_us\":{},\"disk_us\":{},\"stall_us\":{},\
                 \"net_us\":{},\"idle_us\":{}}}",
                b.compute_us, b.disk_us, b.stall_us, b.net_us, b.idle_us
            )
        };
        out.push_str(&format!("\"total\":{},", b(&self.total)));
        out.push_str("\"per_node\":[");
        for (i, n) in self.per_node.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"node\":{},\"lanes\":{},\"buckets\":{}}}",
                n.node,
                n.lanes,
                b(&n.buckets)
            ));
        }
        out.push_str("],\"per_flowlet\":[");
        for (i, f) in self.per_flowlet.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"flowlet\":{},\"compute_us\":{},\"disk_us\":{},\
                 \"stall_bin_us\":{},\"net_bin_us\":{},\"bins\":{},\"records\":{}}}",
                f.flowlet, f.compute_us, f.disk_us, f.stall_bin_us, f.net_bin_us, f.bins, f.records
            ));
        }
        out.push_str("],\"stall_edges\":[");
        for (i, s) in self.stall_edges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"flowlet\":{},\"edge\":{},\"dst\":{},\"stalls\":{},\"stalled_us\":{}}}",
                s.flowlet, s.edge, s.dst, s.stalls, s.stalled_us
            ));
        }
        let cp = &self.critical_path;
        out.push_str(&format!(
            "],\"critical_path\":{{\"total_us\":{},\"compute_us\":{},\
             \"net_us\":{},\"stall_us\":{},\"queue_us\":{},\"hops\":{}}}}}",
            cp.total_us, cp.compute_us, cp.net_us, cp.stall_us, cp.queue_us, cp.hops
        ));
        out
    }
}

/// Analyze a timestamp-sorted event log. `dropped_events` comes from
/// the sink (e.g. [`crate::RingSink::dropped`]) and is carried into the
/// report so downstream consumers can see whether the log is complete.
pub fn analyze(events: &[TraceEvent], dropped_events: u64) -> CausalReport {
    let lineage = Lineage::build(events);
    let attr = attribution::attribute(events, &lineage);
    let cp = critical::critical_path(&lineage);
    CausalReport {
        t0_us: attr.t0_us,
        t1_us: attr.t1_us,
        wall_us: attr.wall_us,
        lanes: attr.per_node.iter().map(|n| n.lanes).sum(),
        total: attr.total,
        per_node: attr.per_node,
        per_flowlet: attr.per_flowlet,
        stall_edges: attr.stall_edges,
        critical_path: cp,
        spans_seen: lineage.spans.len() as u64,
        spans_complete: lineage.spans.values().filter(|s| s.is_complete()).count() as u64,
        dropped_events,
    }
}

fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.1}ms", us as f64 / 1e3)
    } else {
        format!("{us}us")
    }
}

fn pct(part: u64, whole: u64) -> String {
    if whole == 0 {
        "-".into()
    } else {
        format!("{:.1}%", 100.0 * part as f64 / whole as f64)
    }
}

/// Per-node wall-time attribution table (plus a cluster totals row).
pub fn render_attribution(report: &CausalReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "wall {}  ({} worker lanes; buckets are shares of lane time)\n",
        fmt_us(report.wall_us),
        report.lanes
    ));
    if report.dropped_events > 0 {
        out.push_str(&format!(
            "WARNING: {} events dropped by the trace sink — attribution is \
             built on a truncated log; raise RingSink capacity\n",
            report.dropped_events
        ));
    }
    out.push_str(&format!(
        "{:<8} {:>5} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
        "node", "lanes", "compute", "disk", "stall", "net", "idle"
    ));
    let row = |label: String, lanes: u32, b: &Buckets| {
        let t = b.total();
        format!(
            "{:<8} {:>5} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
            label,
            lanes,
            pct(b.compute_us, t),
            pct(b.disk_us, t),
            pct(b.stall_us, t),
            pct(b.net_us, t),
            pct(b.idle_us, t)
        )
    };
    for n in &report.per_node {
        out.push_str(&row(format!("node{}", n.node), n.lanes, &n.buckets));
    }
    out.push_str(&row("TOTAL".into(), report.lanes, &report.total));
    out.push_str(&format!(
        "{:<8} {:>5} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
        "(us)",
        "",
        fmt_us(report.total.compute_us),
        fmt_us(report.total.disk_us),
        fmt_us(report.total.stall_us),
        fmt_us(report.total.net_us),
        fmt_us(report.total.idle_us),
    ));
    out
}

/// The top-stall-edges ranking: which flow-control slots serialized
/// the run.
pub fn render_stall_edges(report: &CausalReport) -> String {
    if report.stall_edges.is_empty() {
        return "no flow-control stalls recorded\n".into();
    }
    let mut out = format!(
        "{:<24} {:>8} {:>12} {:>10}\n",
        "stall edge", "stalls", "stalled", "avg/bin"
    );
    for s in report.stall_edges.iter().take(10) {
        out.push_str(&format!(
            "{:<24} {:>8} {:>12} {:>10}\n",
            format!("f{} edge{} -> node{}", s.flowlet, s.edge, s.dst),
            s.stalls,
            fmt_us(s.stalled_us),
            fmt_us(s.stalled_us / s.stalls.max(1)),
        ));
    }
    out
}

/// Critical-path summary line.
pub fn render_critical_path(report: &CausalReport) -> String {
    let cp = &report.critical_path;
    format!(
        "critical path: {} over {} hops  (compute {} | net {} | stall {} | queue {})  — {} of wall\n",
        fmt_us(cp.total_us),
        cp.hops,
        fmt_us(cp.compute_us),
        fmt_us(cp.net_us),
        fmt_us(cp.stall_us),
        fmt_us(cp.queue_us),
        pct(cp.total_us, report.wall_us),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EventKind, TaskKind};

    fn ev(t_us: u64, node: u32, worker: u32, kind: EventKind) -> TraceEvent {
        TraceEvent {
            t_us,
            node,
            worker,
            kind,
        }
    }

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            ev(
                0,
                0,
                0,
                EventKind::TaskStart {
                    task: TaskKind::MapBin,
                    flowlet: 0,
                    span: 0,
                },
            ),
            ev(
                40,
                0,
                0,
                EventKind::BinEmitted {
                    flowlet: 0,
                    edge: 0,
                    dst: 1,
                    span: 9,
                    records: 4,
                },
            ),
            ev(
                40,
                0,
                0,
                EventKind::BinShipped {
                    flowlet: 0,
                    edge: 0,
                    dst: 1,
                    records: 4,
                    bytes: 64,
                    span: 9,
                },
            ),
            ev(
                50,
                0,
                0,
                EventKind::TaskEnd {
                    task: TaskKind::MapBin,
                    flowlet: 0,
                    records_in: 4,
                    records_out: 4,
                },
            ),
            ev(
                60,
                1,
                0,
                EventKind::BinIngress {
                    flowlet: 1,
                    edge: 0,
                    from: 0,
                    span: 9,
                },
            ),
            ev(
                70,
                1,
                0,
                EventKind::TaskStart {
                    task: TaskKind::ReduceIngest,
                    flowlet: 1,
                    span: 9,
                },
            ),
            ev(
                100,
                1,
                0,
                EventKind::TaskEnd {
                    task: TaskKind::ReduceIngest,
                    flowlet: 1,
                    records_in: 4,
                    records_out: 0,
                },
            ),
        ]
    }

    #[test]
    fn buckets_partition_lane_time_exactly() {
        let report = analyze(&sample_events(), 0);
        assert_eq!(report.wall_us, 100);
        assert_eq!(report.lanes, 2);
        assert_eq!(
            report.total.total(),
            report.lanes as u64 * report.wall_us,
            "exact conservation"
        );
        // Node 0's lane: 50us compute + 50us idle.
        let n0 = &report.per_node[0].buckets;
        assert_eq!(n0.compute_us, 50);
        // Node 1's lane: 30us compute, 20us net (ship 40 → ingress 60),
        // the rest idle.
        let n1 = &report.per_node[1].buckets;
        assert_eq!(n1.compute_us, 30);
        assert_eq!(n1.net_us, 20);
        assert_eq!(report.spans_seen, 1);
        assert_eq!(report.spans_complete, 1);
    }

    #[test]
    fn report_json_parses() {
        let report = analyze(&sample_events(), 3);
        let json = crate::json::parse(&report.to_json()).expect("valid json");
        assert_eq!(json.get("dropped_events").and_then(|d| d.as_u64()), Some(3));
        assert!(json.get("critical_path").is_some());
        assert!(json.get("per_node").and_then(|n| n.as_arr()).is_some());
    }

    #[test]
    fn renders_do_not_panic_and_warn_on_drops() {
        let report = analyze(&sample_events(), 7);
        let table = render_attribution(&report);
        assert!(table.contains("WARNING: 7 events dropped"));
        assert!(render_stall_edges(&report).contains("no flow-control stalls"));
        assert!(render_critical_path(&report).contains("critical path"));
    }

    #[test]
    fn empty_log_is_harmless() {
        let report = analyze(&[], 0);
        assert_eq!(report.wall_us, 0);
        assert_eq!(report.shares(), [0.0; 5]);
        let _ = report.to_json();
        let _ = render_attribution(&report);
    }
}
