//! Wall-time attribution: partition every worker lane's wall time into
//! compute / disk / flow-control-stall / network-wait / idle.
//!
//! The partition is exact *by construction*: each lane's `[t0, t1]`
//! window is swept segment-by-segment and every segment is assigned to
//! exactly one bucket by priority:
//!
//! 1. **disk** — the lane is inside a spill (`SpillStart`/`SpillEnd`);
//! 2. **compute** — the lane is inside a task span;
//! 3. **stall** — the lane is free but its node has deferred bins
//!    (between a `FlowControlStall` and its `FlowControlResume`), i.e.
//!    work exists that flow control will not let ship;
//! 4. **net** — the lane is free but bins destined for this node are in
//!    flight (`BinShipped` seen, `BinIngress` not yet);
//! 5. **idle** — nothing to do (includes parked time).
//!
//! So `compute + disk + stall + net + idle == lanes × wall` exactly,
//! which is what the conservation test asserts.

use super::lineage::Lineage;
use crate::{EventKind, TraceEvent, WORKER_DISK};
use std::collections::HashMap;

/// One wall-time partition (all values in microseconds).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Buckets {
    pub compute_us: u64,
    pub disk_us: u64,
    pub stall_us: u64,
    pub net_us: u64,
    pub idle_us: u64,
}

impl Buckets {
    pub fn total(&self) -> u64 {
        self.compute_us + self.disk_us + self.stall_us + self.net_us + self.idle_us
    }

    pub fn add(&mut self, other: &Buckets) {
        self.compute_us += other.compute_us;
        self.disk_us += other.disk_us;
        self.stall_us += other.stall_us;
        self.net_us += other.net_us;
        self.idle_us += other.idle_us;
    }
}

/// Wall-time partition for all worker lanes of one node.
#[derive(Debug, Clone, Copy)]
pub struct NodeBuckets {
    pub node: u32,
    /// Worker lanes observed on this node.
    pub lanes: u32,
    /// Lane-summed buckets: `buckets.total() == lanes × wall_us`.
    pub buckets: Buckets,
}

/// Per-flowlet resource use. Unlike [`NodeBuckets`] this is *not* a
/// wall partition: `compute_us`/`disk_us` are lane-busy time, while
/// `stall_bin_us`/`net_bin_us` are cumulative per-bin wait times (many
/// bins can wait concurrently, so these may exceed wall).
#[derive(Debug, Clone, Copy, Default)]
pub struct FlowletBuckets {
    pub flowlet: u32,
    pub compute_us: u64,
    pub disk_us: u64,
    pub stall_bin_us: u64,
    pub net_bin_us: u64,
    pub bins: u64,
    pub records: u64,
}

/// Cumulative stall attributed to one (edge, dst) flow-control slot.
#[derive(Debug, Clone, Copy)]
pub struct StallEdge {
    pub flowlet: u32,
    pub edge: u32,
    pub dst: u32,
    pub stalls: u64,
    pub stalled_us: u64,
}

/// Interval list helper: merge +1/-1 deltas into intervals where the
/// running count is positive, clipped to `[t0, t1]`.
fn positive_intervals(mut deltas: Vec<(u64, i64)>, t0: u64, t1: u64) -> Vec<(u64, u64)> {
    deltas.sort_by_key(|&(t, d)| (t, -d));
    let mut out: Vec<(u64, u64)> = Vec::new();
    let mut count = 0i64;
    let mut open_at = 0u64;
    for (t, d) in deltas {
        let was = count;
        count += d;
        if was <= 0 && count > 0 {
            open_at = t;
        } else if was > 0 && count <= 0 {
            let (a, b) = (open_at.max(t0), t.min(t1));
            if a < b {
                out.push((a, b));
            }
        }
    }
    if count > 0 {
        let a = open_at.max(t0);
        if a < t1 {
            out.push((a, t1));
        }
    }
    out
}

/// Merge possibly-overlapping sorted-by-start intervals.
fn merge_intervals(mut v: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    v.sort_by_key(|&(a, _)| a);
    let mut out: Vec<(u64, u64)> = Vec::new();
    for (a, b) in v {
        match out.last_mut() {
            Some((_, end)) if a <= *end => *end = (*end).max(b),
            _ => out.push((a, b)),
        }
    }
    out
}

/// Microseconds of `[a, b]` covered by `intervals` (sorted, disjoint).
fn covered(intervals: &[(u64, u64)], a: u64, b: u64) -> u64 {
    let mut total = 0;
    for &(s, e) in intervals {
        if e <= a {
            continue;
        }
        if s >= b {
            break;
        }
        total += e.min(b) - s.max(a);
    }
    total
}

pub(super) struct Attribution {
    pub wall_us: u64,
    pub t0_us: u64,
    pub t1_us: u64,
    pub total: Buckets,
    pub per_node: Vec<NodeBuckets>,
    pub per_flowlet: Vec<FlowletBuckets>,
    pub stall_edges: Vec<StallEdge>,
}

pub(super) fn attribute(events: &[TraceEvent], lineage: &Lineage) -> Attribution {
    let t0 = events.first().map(|e| e.t_us).unwrap_or(0);
    let t1 = events.last().map(|e| e.t_us).unwrap_or(0);
    let wall = t1 - t0;

    // Node-level condition intervals.
    let mut stall_deltas: HashMap<u32, Vec<(u64, i64)>> = HashMap::new();
    let mut net_deltas: HashMap<u32, Vec<(u64, i64)>> = HashMap::new();
    // Per-lane spill intervals (open SpillStart per (node, lane, flowlet)).
    let mut open_spill: HashMap<(u32, u32, u32), u64> = HashMap::new();
    type SpillIvals = Vec<(u64, u64, u32)>;
    let mut spills: HashMap<(u32, u32), SpillIvals> = HashMap::new();
    let mut stall_edges: HashMap<(u32, u32, u32), (u64, u64)> = HashMap::new();
    for ev in events {
        match ev.kind {
            EventKind::FlowControlStall { .. } => {
                stall_deltas.entry(ev.node).or_default().push((ev.t_us, 1));
            }
            EventKind::FlowControlResume {
                flowlet,
                edge,
                dst,
                stalled_us,
                ..
            } => {
                stall_deltas.entry(ev.node).or_default().push((ev.t_us, -1));
                let slot = stall_edges.entry((flowlet, edge, dst)).or_insert((0, 0));
                slot.0 += 1;
                slot.1 += stalled_us;
            }
            EventKind::BinShipped { dst, span, .. } if span != 0 => {
                net_deltas.entry(dst).or_default().push((ev.t_us, 1));
            }
            EventKind::BinIngress { span, .. } if span != 0 => {
                net_deltas.entry(ev.node).or_default().push((ev.t_us, -1));
            }
            EventKind::SpillStart { flowlet } if ev.worker < WORKER_DISK => {
                open_spill.insert((ev.node, ev.worker, flowlet), ev.t_us);
            }
            EventKind::SpillEnd { flowlet, .. } if ev.worker < WORKER_DISK => {
                if let Some(start) = open_spill.remove(&(ev.node, ev.worker, flowlet)) {
                    spills
                        .entry((ev.node, ev.worker))
                        .or_default()
                        .push((start, ev.t_us, flowlet));
                }
            }
            _ => {}
        }
    }
    let stall_iv: HashMap<u32, Vec<(u64, u64)>> = stall_deltas
        .into_iter()
        .map(|(n, d)| (n, positive_intervals(d, t0, t1)))
        .collect();
    let net_iv: HashMap<u32, Vec<(u64, u64)>> = net_deltas
        .into_iter()
        .map(|(n, d)| (n, positive_intervals(d, t0, t1)))
        .collect();

    let mut per_node: HashMap<u32, NodeBuckets> = HashMap::new();
    let mut per_flowlet: HashMap<u32, FlowletBuckets> = HashMap::new();
    let empty: Vec<(u64, u64)> = Vec::new();

    for (&(node, lane), task_indices) in &lineage.lanes {
        let node_stalls = stall_iv.get(&node).unwrap_or(&empty);
        let node_net = net_iv.get(&node).unwrap_or(&empty);
        let lane_spills = spills.get(&(node, lane)).cloned().unwrap_or_default();
        let spill_iv: Vec<(u64, u64)> =
            merge_intervals(lane_spills.iter().map(|&(a, b, _)| (a, b)).collect());
        // Busy = union of task spans on this lane (spans never overlap
        // on one lane except transiently at matching boundaries).
        let busy_iv: Vec<(u64, u64)> = merge_intervals(
            task_indices
                .iter()
                .map(|&i| {
                    let t = &lineage.tasks[i];
                    (t.start_us.clamp(t0, t1), t.end_us.clamp(t0, t1))
                })
                .collect(),
        );
        let mut b = Buckets::default();
        // Busy time splits disk-vs-compute by spill coverage.
        for &(a, e) in &busy_iv {
            let disk = covered(&spill_iv, a, e);
            b.disk_us += disk;
            b.compute_us += (e - a) - disk;
        }
        // Free time: walk the gaps around busy intervals.
        let mut cursor = t0;
        let mut gaps: Vec<(u64, u64)> = Vec::new();
        for &(a, e) in &busy_iv {
            if a > cursor {
                gaps.push((cursor, a));
            }
            cursor = cursor.max(e);
        }
        if cursor < t1 {
            gaps.push((cursor, t1));
        }
        for (a, e) in gaps {
            let stall = covered(node_stalls, a, e);
            // Net only counts where not already claimed by stall:
            // sweep sub-segments via boundary merge of both lists.
            let mut cuts: Vec<u64> = vec![a, e];
            for &(s, x) in node_stalls.iter().chain(node_net.iter()) {
                if s > a && s < e {
                    cuts.push(s);
                }
                if x > a && x < e {
                    cuts.push(x);
                }
            }
            cuts.sort_unstable();
            cuts.dedup();
            let mut net = 0;
            for w in cuts.windows(2) {
                let (sa, se) = (w[0], w[1]);
                let in_stall = covered(node_stalls, sa, se) > 0;
                let in_net = covered(node_net, sa, se) > 0;
                if !in_stall && in_net {
                    net += se - sa;
                }
            }
            b.stall_us += stall;
            b.net_us += net;
            b.idle_us += (e - a) - stall - net;
        }
        let entry = per_node.entry(node).or_insert(NodeBuckets {
            node,
            lanes: 0,
            buckets: Buckets::default(),
        });
        entry.lanes += 1;
        entry.buckets.add(&b);

        // Per-flowlet lane-busy attribution.
        for &i in task_indices {
            let t = &lineage.tasks[i];
            let (a, e) = (t.start_us.clamp(t0, t1), t.end_us.clamp(t0, t1));
            let disk = covered(&spill_iv, a, e);
            let f = per_flowlet.entry(t.flowlet).or_insert(FlowletBuckets {
                flowlet: t.flowlet,
                ..FlowletBuckets::default()
            });
            f.disk_us += disk;
            f.compute_us += (e - a) - disk;
        }
    }

    // Per-flowlet bin-wait sums from lineage.
    for rec in lineage.spans.values() {
        let f = per_flowlet.entry(rec.flowlet).or_insert(FlowletBuckets {
            flowlet: rec.flowlet,
            ..FlowletBuckets::default()
        });
        f.bins += 1;
        f.records += rec.records as u64;
        if let Some(st) = rec.stalled_us {
            f.stall_bin_us += st;
        }
        if let (Some((ship_t, _)), Some((in_t, _))) = (rec.shipped, rec.ingress) {
            f.net_bin_us += in_t.saturating_sub(ship_t);
        }
    }

    let mut per_node: Vec<NodeBuckets> = per_node.into_values().collect();
    per_node.sort_by_key(|n| n.node);
    let mut per_flowlet: Vec<FlowletBuckets> = per_flowlet.into_values().collect();
    per_flowlet.sort_by_key(|f| f.flowlet);
    let mut stall_edges: Vec<StallEdge> = stall_edges
        .into_iter()
        .map(|((flowlet, edge, dst), (stalls, stalled_us))| StallEdge {
            flowlet,
            edge,
            dst,
            stalls,
            stalled_us,
        })
        .collect();
    stall_edges.sort_by_key(|e| std::cmp::Reverse(e.stalled_us));

    let mut total = Buckets::default();
    for n in &per_node {
        total.add(&n.buckets);
    }
    Attribution {
        wall_us: wall,
        t0_us: t0,
        t1_us: t1,
        total,
        per_node,
        per_flowlet,
        stall_edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positive_interval_merging() {
        let iv = positive_intervals(vec![(5, 1), (7, 1), (9, -1), (12, -1), (20, 1)], 0, 30);
        assert_eq!(iv, vec![(5, 12), (20, 30)]);
    }

    #[test]
    fn coverage_math() {
        let iv = vec![(2, 5), (8, 12)];
        assert_eq!(covered(&iv, 0, 20), 7);
        assert_eq!(covered(&iv, 4, 9), 2);
        assert_eq!(covered(&iv, 5, 8), 0);
    }
}
