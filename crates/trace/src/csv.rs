//! Minimal shared CSV writing, RFC 4180 quoting rules.
//!
//! Both the telemetry time-series export and simnet's traffic-matrix
//! export emit CSV; this helper is the one place that knows when a
//! field needs quoting (embedded comma, quote, or newline) so ad-hoc
//! emitters cannot silently produce unparsable rows. Plain fields pass
//! through unquoted, keeping existing golden outputs byte-stable.

/// Escape one CSV field: returned verbatim unless it contains a comma,
/// double quote, CR or LF, in which case it is quoted with inner
/// quotes doubled.
pub fn csv_escape(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        let mut out = String::with_capacity(field.len() + 2);
        out.push('"');
        for c in field.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
        out
    } else {
        field.to_string()
    }
}

/// Append one CSV row (fields escaped, comma-joined, newline-ended)
/// to `out`.
pub fn push_csv_row<S: AsRef<str>>(out: &mut String, fields: impl IntoIterator<Item = S>) {
    let mut first = true;
    for field in fields {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&csv_escape(field.as_ref()));
    }
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_fields_pass_through() {
        assert_eq!(csv_escape("t_us"), "t_us");
        assert_eq!(csv_escape("node0/f1/queue_depth"), "node0/f1/queue_depth");
        assert_eq!(csv_escape(""), "");
    }

    #[test]
    fn special_fields_are_quoted() {
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_escape("line\nbreak"), "\"line\nbreak\"");
    }

    #[test]
    fn rows_join_and_terminate() {
        let mut out = String::new();
        push_csv_row(&mut out, ["a", "b,c", "d"]);
        push_csv_row(&mut out, ["1", "2", "3"]);
        assert_eq!(out, "a,\"b,c\",d\n1,2,3\n");
    }
}
