//! Cross-crate integration through the `hamr` facade: the whole stack
//! (codec → substrates → engines → workloads) exercised as a user
//! would, plus shape checks the evaluation relies on.

use hamr::core::{typed, Cluster, ClusterConfig, Emitter, Exchange, JobBuilder};
use hamr::workloads::{Benchmark, Env, SimParams};

#[test]
fn facade_reexports_compose() {
    // Every subsystem reachable through the facade.
    assert!(hamr::codec::partition(b"key", 4) < 4);
    let disk = hamr::simdisk::Disk::new(hamr::simdisk::DiskConfig::instant());
    disk.write_all("f", b"data").unwrap();
    let dfs = hamr::dfs::Dfs::in_memory(2);
    dfs.create("x").unwrap().seal().unwrap();
    let kv = hamr::kvstore::KvStore::new(2);
    kv.put(bytes::Bytes::from("k"), bytes::Bytes::from("v"));
    assert_eq!(kv.total_len(), 1);
    assert!(!hamr::VERSION.is_empty());
}

#[test]
fn hamr_job_via_facade() {
    let cluster = Cluster::new(ClusterConfig::local(2, 2));
    let mut job = JobBuilder::new("facade");
    let loader = job.add_loader(
        "nums",
        typed::pairs_loader((0..100u64).map(|i| (i, i % 10)).collect::<Vec<_>>()),
    );
    let sum = job.add_partial_reduce("sum", typed::sum_reducer::<u64>());
    job.connect(loader, sum, Exchange::Hash);
    job.capture_output(sum);
    let result = cluster.run(job.build().unwrap()).unwrap();
    let total: u64 = result
        .typed_output::<u64, u64>(sum)
        .iter()
        .map(|(_, v)| v)
        .sum();
    assert_eq!(total, (0..100u64).map(|i| i % 10).sum());
}

#[test]
fn mapreduce_job_via_facade() {
    let cluster = hamr::mapred::MrCluster::in_memory(2, 2);
    let mut w = cluster.dfs().create("in.txt").unwrap();
    w.write_line("x y x");
    w.seal().unwrap();
    let job = hamr::mapred::JobConf::new(
        "wc",
        vec!["in.txt".into()],
        "out",
        std::sync::Arc::new(hamr::mapred::line_map_fn(|_, line, out| {
            for word in line.split_whitespace() {
                out.emit_t(&word.to_string(), &1u64);
            }
        })),
        std::sync::Arc::new(hamr::mapred::reduce_fn(
            |k: String, vs: Vec<u64>, out: &mut hamr::mapred::ReduceOutput| {
                out.emit_t(&k, &vs.iter().sum::<u64>());
            },
        )),
    );
    let stats = cluster.run(&job).unwrap();
    assert_eq!(stats.map_records_out, 3);
    assert_eq!(stats.groups, 2);
}

/// The headline shape claims of the evaluation, verified on a small
/// *timed* environment: HAMR beats the baseline on a complex workload;
/// the skewed workload's shuffle concentrates on at most 5 nodes.
#[test]
fn evaluation_shape_holds_at_small_scale() {
    let params = SimParams::paper_scaled().with_scale(0.1);
    // Complex/iterative: PageRank — HAMR must win.
    let env = Env::new(params.clone());
    let pr = hamr::workloads::pagerank::PageRank {
        pages: 3_000,
        max_out_links: 8,
        iterations: 3,
        resident: true,
    };
    pr.seed(&env).unwrap();
    let hamr_t = pr.run_hamr(&env).unwrap();
    let mr_t = pr.run_mapred(&env).unwrap();
    assert_eq!(hamr_t.checksum, mr_t.checksum);
    assert!(
        mr_t.elapsed > hamr_t.elapsed,
        "PageRank: expected HAMR to win (hamr {:?} vs mapred {:?})",
        hamr_t.elapsed,
        mr_t.elapsed
    );
}

#[test]
fn skewed_shuffle_concentrates_on_few_nodes() {
    // HistogramRatings' 5-key space must land on <= 5 of 8 nodes.
    let env = Env::test(8, 2);
    let hr = hamr::workloads::histogram_ratings::HistogramRatings {
        movies: 2_000,
        users: 500,
        max_ratings_per_movie: 10,
    };
    hr.seed(&env).unwrap();
    let out = hr.run_hamr(&env).unwrap();
    assert_eq!(out.records, 5, "five rating keys");
}

#[test]
fn streaming_and_batch_compose_via_facade() {
    let cluster = Cluster::new(ClusterConfig::local(2, 2));
    let mut job = JobBuilder::new("stream");
    let src = job.add_stream(
        "src",
        hamr::core::stream::bounded_stream(2, |_ctx, _e, out: &mut Emitter| {
            out.emit_t(0, &1u64, &1u64);
        }),
    );
    let sum = job.add_partial_reduce("sum", typed::sum_reducer::<u64>());
    job.connect(src, sum, Exchange::Hash);
    job.capture_output(sum);
    let result = cluster.run(job.build().unwrap()).unwrap();
    let total: u64 = result
        .typed_output::<u64, u64>(sum)
        .iter()
        .map(|(_, v)| v)
        .sum();
    // 2 nodes x 2 epochs x 1 record.
    assert_eq!(total, 4);
}
