//! Minimal offline stand-in for `parking_lot`, implemented over
//! `std::sync` primitives.
//!
//! API differences from std that this shim papers over, matching the
//! real parking_lot:
//! - `lock()` / `read()` / `write()` return guards directly (no
//!   `Result`); poisoning is ignored.
//! - `Condvar::wait` / `wait_for` take `&mut MutexGuard` instead of
//!   consuming and returning the guard. The guard therefore wraps an
//!   `Option<std::sync::MutexGuard>` that the condvar can temporarily
//!   take out and put back.

use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

pub struct MutexGuard<'a, T: ?Sized> {
    // `Some` except transiently inside Condvar::wait/wait_for.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard taken during wait");
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard taken during wait");
        let (inner, result) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
        drop(g);
    }
}
