//! Minimal offline stand-in for the `bytes` crate.
//!
//! Implements the subset the workspace uses: an immutable, cheaply
//! clonable byte buffer. Backed by `Arc<[u8]>`, so `clone()` is a
//! refcount bump and slices handed out borrow the shared allocation.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer (no allocation shared with anything else).
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Copy `data` into a fresh shared allocation.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// The real crate keeps a pointer to the static data; copying is an
    /// acceptable stand-in since callers only rely on the value.
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::copy_from_slice(data)
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

// Borrow + a slice-identical Hash let `HashMap<Bytes, _>` be probed
// with plain `&[u8]` keys (hamr-kvstore relies on this).
impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.data.hash(state);
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.data[..].cmp(&other.data[..])
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.data[..] == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.data[..] == other[..]
    }
}

impl PartialEq<str> for Bytes {
    fn eq(&self, other: &str) -> bool {
        self.data[..] == *other.as_bytes()
    }
}

impl PartialEq<&str> for Bytes {
    fn eq(&self, other: &&str) -> bool {
        self.data[..] == *other.as_bytes()
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.data[..] == **other
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            match b {
                b'"' => write!(f, "\\\"")?,
                b'\\' => write!(f, "\\\\")?,
                b'\n' => write!(f, "\\n")?,
                b'\r' => write!(f, "\\r")?,
                b'\t' => write!(f, "\\t")?,
                0x20..=0x7e => write!(f, "{}", b as char)?,
                _ => write!(f, "\\x{b:02x}")?,
            }
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes {
            data: s.into_bytes().into(),
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Self {
        Bytes { data: b.into() }
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::collections::HashMap;

    fn hash_of<T: Hash + ?Sized>(v: &T) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn hash_matches_slice_hash() {
        let b = Bytes::copy_from_slice(b"hello");
        assert_eq!(hash_of(&b), hash_of(&b"hello"[..]));
    }

    #[test]
    fn map_lookup_by_slice() {
        let mut m: HashMap<Bytes, u32> = HashMap::new();
        m.insert(Bytes::from_static(b"k"), 7);
        assert_eq!(m.get(&b"k"[..]), Some(&7));
    }

    #[test]
    fn clone_shares_allocation() {
        let a = Bytes::copy_from_slice(b"abc");
        let b = a.clone();
        assert_eq!(a.as_ptr(), b.as_ptr());
        assert_eq!(a, b);
    }

    #[test]
    fn ordering_and_eq_follow_slices() {
        let a = Bytes::from_static(b"aa");
        let b = Bytes::from_static(b"ab");
        assert!(a < b);
        assert_eq!(a, Bytes::from(b"aa".to_vec()));
    }
}
