//! Minimal offline stand-in for the `bytes` crate.
//!
//! Implements the subset the workspace uses: an immutable, cheaply
//! clonable byte buffer plus a growable builder. [`Bytes`] is backed by
//! `Arc<[u8]>` with an `(offset, len)` view, so `clone()` is a refcount
//! bump and [`Bytes::slice`] hands out zero-copy sub-views of the same
//! allocation — the property the frame-bin data plane is built on.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer (possibly a sub-view of
/// a larger shared allocation).
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    off: usize,
    len: usize,
}

impl Bytes {
    /// An empty buffer (no allocation shared with anything else).
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
            off: 0,
            len: 0,
        }
    }

    /// Copy `data` into a fresh shared allocation.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
            off: 0,
            len: data.len(),
        }
    }

    /// The real crate keeps a pointer to the static data; copying is an
    /// acceptable stand-in since callers only rely on the value.
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::copy_from_slice(data)
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.off..self.off + self.len]
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// A zero-copy sub-view sharing this buffer's allocation.
    ///
    /// # Panics
    /// Panics if the range is out of bounds or decreasing, mirroring
    /// the real crate.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(
            start <= end && end <= self.len,
            "slice out of bounds: {start}..{end} of {}",
            self.len
        );
        Bytes {
            data: Arc::clone(&self.data),
            off: self.off + start,
            len: end - start,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

// Borrow + a slice-identical Hash let `HashMap<Bytes, _>` be probed
// with plain `&[u8]` keys (hamr-kvstore relies on this).
impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == &other[..]
    }
}

impl PartialEq<str> for Bytes {
    fn eq(&self, other: &str) -> bool {
        self.as_slice() == other.as_bytes()
    }
}

impl PartialEq<&str> for Bytes {
    fn eq(&self, other: &&str) -> bool {
        self.as_slice() == other.as_bytes()
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            match b {
                b'"' => write!(f, "\\\"")?,
                b'\\' => write!(f, "\\\\")?,
                b'\n' => write!(f, "\\n")?,
                b'\r' => write!(f, "\\r")?,
                b'\t' => write!(f, "\\t")?,
                0x20..=0x7e => write!(f, "{}", b as char)?,
                _ => write!(f, "\\x{b:02x}")?,
            }
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            data: v.into(),
            off: 0,
            len,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Self {
        let len = b.len();
        Bytes {
            data: b.into(),
            off: 0,
            len,
        }
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

/// A growable byte buffer that freezes into a shared [`Bytes`] with a
/// single allocation handoff — the frame builders' backing store.
#[derive(Default)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    pub fn clear(&mut self) {
        self.buf.clear();
    }

    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    pub fn put_u8(&mut self, b: u8) {
        self.buf.push(b);
    }

    /// Convert into an immutable shared buffer.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl Extend<u8> for BytesMut {
    fn extend<I: IntoIterator<Item = u8>>(&mut self, iter: I) {
        self.buf.extend(iter);
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut(len={})", self.buf.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::collections::HashMap;

    fn hash_of<T: Hash + ?Sized>(v: &T) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn hash_matches_slice_hash() {
        let b = Bytes::copy_from_slice(b"hello");
        assert_eq!(hash_of(&b), hash_of(&b"hello"[..]));
    }

    #[test]
    fn map_lookup_by_slice() {
        let mut m: HashMap<Bytes, u32> = HashMap::new();
        m.insert(Bytes::from_static(b"k"), 7);
        assert_eq!(m.get(&b"k"[..]), Some(&7));
    }

    #[test]
    fn clone_shares_allocation() {
        let a = Bytes::copy_from_slice(b"abc");
        let b = a.clone();
        assert_eq!(a.as_ptr(), b.as_ptr());
        assert_eq!(a, b);
    }

    #[test]
    fn ordering_and_eq_follow_slices() {
        let a = Bytes::from_static(b"aa");
        let b = Bytes::from_static(b"ab");
        assert!(a < b);
        assert_eq!(a, Bytes::from(b"aa".to_vec()));
    }

    #[test]
    fn slice_is_zero_copy_and_bounded() {
        let a = Bytes::copy_from_slice(b"hello world");
        let hello = a.slice(0..5);
        let world = a.slice(6..);
        assert_eq!(hello, b"hello"[..]);
        assert_eq!(world, b"world"[..]);
        // Same backing allocation, different windows.
        assert_eq!(unsafe { hello.as_ptr().add(6) }, world.as_ptr());
        // Slices of slices re-window relative to the view.
        assert_eq!(world.slice(1..3), b"or"[..]);
        assert_eq!(a.slice(..), a);
        assert_eq!(a.slice(5..5).len(), 0);
    }

    #[test]
    #[should_panic(expected = "slice out of bounds")]
    fn slice_past_end_panics() {
        Bytes::copy_from_slice(b"abc").slice(1..7);
    }

    #[test]
    fn sliced_bytes_hash_and_compare_as_their_view() {
        let a = Bytes::copy_from_slice(b"xxkeyxx");
        let key = a.slice(2..5);
        assert_eq!(hash_of(&key), hash_of(&b"key"[..]));
        let mut m: HashMap<Bytes, u32> = HashMap::new();
        m.insert(key, 1);
        assert_eq!(m.get(&b"key"[..]), Some(&1));
    }

    #[test]
    fn bytes_mut_freeze_round_trip() {
        let mut b = BytesMut::with_capacity(4);
        b.extend_from_slice(b"ab");
        b.put_u8(b'c');
        assert_eq!(b.len(), 3);
        let frozen = b.freeze();
        assert_eq!(frozen, b"abc"[..]);
        // A frozen buffer still slices zero-copy.
        assert_eq!(frozen.slice(1..), b"bc"[..]);
    }

    #[test]
    fn bytes_mut_clear_reuses_capacity() {
        let mut b = BytesMut::with_capacity(16);
        b.extend_from_slice(b"0123456789");
        let cap = b.capacity();
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.capacity(), cap);
    }
}
