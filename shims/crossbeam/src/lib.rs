//! Minimal offline stand-in for the `crossbeam` crate: an MPMC
//! unbounded channel with crossbeam-compatible disconnect semantics,
//! plus a `select!` macro covering the two-receiver-with-timeout shape
//! the scheduler uses (implemented by polling with a short sleep).

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    impl<T> Inner<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
            self.state.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (Sender(inner.clone()), Receiver(inner))
    }

    pub struct Sender<T>(Arc<Inner<T>>);

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "Sender {{ .. }}")
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.0.lock();
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.queue.push_back(value);
            drop(state);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.lock().senders += 1;
            Sender(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let last = {
                let mut state = self.0.lock();
                state.senders -= 1;
                state.senders == 0
            };
            if last {
                self.0.ready.notify_all();
            }
        }
    }

    pub struct Receiver<T>(Arc<Inner<T>>);

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "Receiver {{ .. }}")
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.0.lock();
            loop {
                if let Some(v) = state.queue.pop_front() {
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .0
                    .ready
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.0.lock();
            if let Some(v) = state.queue.pop_front() {
                Ok(v)
            } else if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.0.lock();
            loop {
                if let Some(v) = state.queue.pop_front() {
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (next, _) = self
                    .0
                    .ready
                    .wait_timeout(state, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                state = next;
            }
        }

        pub fn is_empty(&self) -> bool {
            self.0.lock().queue.is_empty()
        }

        pub fn len(&self) -> usize {
            self.0.lock().queue.len()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.lock().receivers += 1;
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.lock().receivers -= 1;
        }
    }

    #[derive(PartialEq, Eq, Clone, Copy)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    // Let call sites spell the macro `crossbeam::channel::select!` like
    // the real crate does.
    pub use crate::select;
}

/// Polling `select!` over two receivers plus a `default(timeout)` arm.
///
/// Matches crossbeam semantics for this shape: a disconnected receiver
/// counts as ready (its arm fires with `Err(RecvError)`), and the
/// default arm fires once `timeout` elapses with neither ready.
#[macro_export]
macro_rules! select {
    (
        recv($r1:expr) -> $p1:pat => $h1:block
        recv($r2:expr) -> $p2:pat => $h2:block
        default($t:expr) => $hd:block
    ) => {{
        let __deadline = ::std::time::Instant::now() + $t;
        loop {
            match $r1.try_recv() {
                ::std::result::Result::Err($crate::channel::TryRecvError::Empty) => {}
                __r => {
                    let $p1 = __r.map_err(|_| $crate::channel::RecvError);
                    $h1
                    break;
                }
            }
            match $r2.try_recv() {
                ::std::result::Result::Err($crate::channel::TryRecvError::Empty) => {}
                __r => {
                    let $p2 = __r.map_err(|_| $crate::channel::RecvError);
                    $h2
                    break;
                }
            }
            if ::std::time::Instant::now() >= __deadline {
                $hd
                break;
            }
            ::std::thread::sleep(::std::time::Duration::from_micros(500));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_errors_after_all_receivers_drop() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn mpmc_each_message_delivered_once() {
        let (tx, rx) = unbounded::<u64>();
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || {
                    let mut sum = 0u64;
                    while let Ok(v) = rx.recv() {
                        sum += v;
                    }
                    sum
                })
            })
            .collect();
        drop(rx);
        for v in 1..=100u64 {
            tx.send(v).unwrap();
        }
        drop(tx);
        let total: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 100 * 101 / 2);
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn blocking_recv_wakes_on_send() {
        let (tx, rx) = unbounded::<u32>();
        let t = thread::spawn(move || rx.recv());
        thread::sleep(Duration::from_millis(10));
        tx.send(42).unwrap();
        assert_eq!(t.join().unwrap(), Ok(42));
    }

    #[test]
    fn select_prefers_ready_receiver_then_times_out() {
        let (tx1, rx1) = unbounded::<u32>();
        let (_tx2, rx2) = unbounded::<u32>();
        tx1.send(5).unwrap();
        let mut got = None;
        let mut timed_out = false;
        crate::select! {
            recv(rx1) -> v => { if let Ok(v) = v { got = Some(v); } }
            recv(rx2) -> v => { if let Ok(v) = v { got = Some(v + 100); } }
            default(Duration::from_millis(5)) => { timed_out = true; }
        }
        assert_eq!(got, Some(5));
        assert!(!timed_out);

        let mut fired_default = false;
        let mut late = None;
        crate::select! {
            recv(rx1) -> v => { if let Ok(v) = v { late = Some(v); } }
            recv(rx2) -> v => { if let Ok(v) = v { late = Some(v); } }
            default(Duration::from_millis(5)) => { fired_default = true; }
        }
        assert!(fired_default);
        assert_eq!(late, None);
    }
}
