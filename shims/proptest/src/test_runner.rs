//! Deterministic RNG used by the proptest shim: xoshiro256++ seeded
//! per case index via SplitMix64, so every run of a test generates the
//! same inputs (failures reproduce without persisted seeds).

#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Build the generator for a given case index. The constant mixes
    /// the stream away from the rand shim's seeding so tests that use
    /// both don't see correlated values.
    pub fn for_case(case: u64) -> Self {
        let mut x = case ^ 0x5eed_c0de_d15e_a5e5;
        let mut next = || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, n)`. Modulo bias is negligible for the
    /// small `n` used in strategies.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.next_u64() % n
    }
}

#[cfg(test)]
mod tests {
    use super::TestRng;

    #[test]
    fn same_case_same_stream() {
        let mut a = TestRng::for_case(3);
        let mut b = TestRng::for_case(3);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_cases_differ() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_case(1);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_case(2);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, b);
    }
}
