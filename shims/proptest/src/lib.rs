//! Minimal offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's tests
//! use: the `proptest!` macro (both `ident in strategy` and
//! `ident: Type` parameters), `prop_assert*`, `prop_oneof!`, and the
//! `Strategy` trait with the combinators the tests reference
//! (`prop_map`, `prop_filter`, `prop::collection::vec`,
//! `prop::sample::select`, `prop::num::f64::{ANY, NORMAL}`, integer
//! ranges, tuples, and `[a-z]{m,n}`-style string patterns).
//!
//! Differences from the real crate, by design:
//! - Cases are generated from a **fixed deterministic seed** per case
//!   index, so failures reproduce across runs and machines.
//! - There is **no shrinking**; a failure reports the case index and
//!   the assertion message only.
//! - The default case count is 64 (override with the `PROPTEST_CASES`
//!   environment variable or `ProptestConfig::with_cases`).

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod test_runner;

pub use test_runner::TestRng;

// ---------------------------------------------------------------------------
// Config + runner
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Driver behind the `proptest!` macro: runs the case closure once per
/// case with a deterministic per-case RNG, panicking on the first
/// failed `prop_assert*`.
pub fn run_proptest<F>(config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), String>,
{
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(config.cases);
    for i in 0..cases {
        let mut rng = TestRng::for_case(u64::from(i));
        if let Err(msg) = case(&mut rng) {
            panic!("proptest: case {}/{} failed: {}", i + 1, cases, msg);
        }
    }
}

// ---------------------------------------------------------------------------
// Strategy trait + combinators
// ---------------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
///
/// Unlike the real proptest there is no value tree / shrinking: a
/// strategy simply draws a value from an RNG.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({:?}) rejected 1000 candidates in a row",
            self.reason
        );
    }
}

/// Equal-weight choice between boxed strategies (built by `prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies: integer ranges, tuples, string patterns
// ---------------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (start as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// `&'static str` acts as a regex-ish string strategy. Supported
/// syntax: sequences of `[class]{m,n}`, `[class]{m}`, `[class]`, or a
/// literal character with an optional repetition — enough for patterns
/// like `"[a-e]{1,3}"`.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        let choices: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
            let mut set = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                    assert!(lo <= hi, "bad class range in pattern {pattern:?}");
                    for c in lo..=hi {
                        set.push(char::from_u32(c).unwrap());
                    }
                    j += 3;
                } else {
                    set.push(chars[j]);
                    j += 1;
                }
            }
            i = close + 1;
            set
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        assert!(!choices.is_empty(), "empty character class in {pattern:?}");
        let (lo, hi) = parse_repetition(&chars, &mut i, pattern);
        let n = lo + rng.below((hi - lo + 1) as u64) as usize;
        for _ in 0..n {
            out.push(choices[rng.below(choices.len() as u64) as usize]);
        }
    }
    out
}

/// Parse a `{m}` / `{m,n}` suffix at `*i`, defaulting to `{1}`.
fn parse_repetition(chars: &[char], i: &mut usize, pattern: &str) -> (usize, usize) {
    if *i >= chars.len() || chars[*i] != '{' {
        return (1, 1);
    }
    let close = chars[*i..]
        .iter()
        .position(|&c| c == '}')
        .map(|p| *i + p)
        .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
    let body: String = chars[*i + 1..close].iter().collect();
    *i = close + 1;
    let parse = |s: &str| {
        s.trim()
            .parse::<usize>()
            .unwrap_or_else(|_| panic!("bad repetition in pattern {pattern:?}"))
    };
    match body.split_once(',') {
        Some((lo, hi)) => (parse(lo), parse(hi)),
        None => {
            let n = parse(&body);
            (n, n)
        }
    }
}

// ---------------------------------------------------------------------------
// any::<T>() / Arbitrary
// ---------------------------------------------------------------------------

pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for Any<T> {}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Mostly printable ASCII with a sprinkling of general unicode,
        // so string round-trips see multi-byte encodings.
        if rng.below(10) < 7 {
            char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap()
        } else {
            loop {
                if let Some(c) = char::from_u32(rng.below(0x11_0000) as u32) {
                    return c;
                }
            }
        }
    }
}

impl Arbitrary for String {
    fn arbitrary(rng: &mut TestRng) -> String {
        let len = rng.below(17) as usize;
        (0..len).map(|_| char::arbitrary(rng)).collect()
    }
}

impl<T: Arbitrary> Arbitrary for Vec<T> {
    fn arbitrary(rng: &mut TestRng) -> Vec<T> {
        let len = rng.below(33) as usize;
        (0..len).map(|_| T::arbitrary(rng)).collect()
    }
}

impl<T: Arbitrary> Arbitrary for Option<T> {
    fn arbitrary(rng: &mut TestRng) -> Option<T> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(T::arbitrary(rng))
        }
    }
}

// ---------------------------------------------------------------------------
// prop::{collection, num, sample}
// ---------------------------------------------------------------------------

pub mod prop {
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::{Range, RangeInclusive};

        /// Inclusive length bounds for collection strategies. The
        /// `Into` conversions are what force `0..300` literals to infer
        /// `usize`, matching the real crate's API shape.
        #[derive(Clone, Copy)]
        pub struct SizeRange {
            lo: usize,
            hi: usize,
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty collection size range");
                SizeRange {
                    lo: r.start,
                    hi: r.end - 1,
                }
            }
        }

        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> Self {
                SizeRange {
                    lo: *r.start(),
                    hi: *r.end(),
                }
            }
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n }
            }
        }

        #[derive(Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// A vector whose length is drawn uniformly from `size` and
        /// whose elements are drawn from `element`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.hi - self.size.lo + 1) as u64;
                let len = self.size.lo + rng.below(span) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    pub mod num {
        pub mod f64 {
            use crate::{Strategy, TestRng};

            /// Any bit pattern, including NaN and the infinities.
            #[derive(Clone, Copy)]
            pub struct AnyF64;

            /// Finite, normal (non-subnormal, non-zero) doubles.
            #[derive(Clone, Copy)]
            pub struct NormalF64;

            pub const ANY: AnyF64 = AnyF64;
            pub const NORMAL: NormalF64 = NormalF64;

            impl Strategy for AnyF64 {
                type Value = f64;
                fn generate(&self, rng: &mut TestRng) -> f64 {
                    f64::from_bits(rng.next_u64())
                }
            }

            impl Strategy for NormalF64 {
                type Value = f64;
                fn generate(&self, rng: &mut TestRng) -> f64 {
                    let sign = rng.next_u64() & (1 << 63);
                    let exp = 1 + rng.below(2046);
                    let mantissa = rng.next_u64() & ((1 << 52) - 1);
                    f64::from_bits(sign | (exp << 52) | mantissa)
                }
            }
        }
    }

    pub mod sample {
        use crate::{Strategy, TestRng};

        #[derive(Clone)]
        pub struct Select<T> {
            options: Vec<T>,
        }

        /// Uniform choice among a fixed list of values.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select() needs at least one option");
            Select { options }
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                self.options[rng.below(self.options.len() as u64) as usize].clone()
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @fns ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @fns ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@fns ($cfg:expr)) => {};

    (@fns ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        // Attributes (including the `#[test]` the caller wrote) are
        // dropped; the expansion supplies its own #[test].
        #[test]
        fn $name() {
            $crate::__proptest_impl!{ @params ($cfg) ($body) [] $($params)* }
        }
        $crate::__proptest_impl!{ @fns ($cfg) $($rest)* }
    };

    // All parameters munched: emit the runner call.
    (@params ($cfg:expr) ($body:block) [$(($p:ident, $s:expr))*]) => {
        $crate::run_proptest(&($cfg), |__rng| {
            $(let $p = $crate::Strategy::generate(&($s), __rng);)*
            $body
            ::std::result::Result::Ok(())
        });
    };

    // `name in strategy, ...`
    (@params ($cfg:expr) ($body:block) [$($acc:tt)*] $p:ident in $s:expr, $($rest:tt)*) => {
        $crate::__proptest_impl!{ @params ($cfg) ($body) [$($acc)* ($p, $s)] $($rest)* }
    };
    // `name in strategy` (final, no trailing comma)
    (@params ($cfg:expr) ($body:block) [$($acc:tt)*] $p:ident in $s:expr) => {
        $crate::__proptest_impl!{ @params ($cfg) ($body) [$($acc)* ($p, $s)] }
    };
    // `name: Type, ...`
    (@params ($cfg:expr) ($body:block) [$($acc:tt)*] $p:ident : $t:ty, $($rest:tt)*) => {
        $crate::__proptest_impl!{ @params ($cfg) ($body) [$($acc)* ($p, $crate::any::<$t>())] $($rest)* }
    };
    // `name: Type` (final)
    (@params ($cfg:expr) ($body:block) [$($acc:tt)*] $p:ident : $t:ty) => {
        $crate::__proptest_impl!{ @params ($cfg) ($body) [$($acc)* ($p, $crate::any::<$t>())] }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} ({})",
                stringify!($cond),
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r,
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                __l,
                __r,
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

// ---------------------------------------------------------------------------
// Self-tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn pattern_strategy_matches_class_and_reps() {
        let mut rng = crate::TestRng::for_case(1);
        for _ in 0..200 {
            let s = crate::Strategy::generate(&"[a-c]{1,3}", &mut rng);
            assert!((1..=3).contains(&s.len()), "bad len: {s:?}");
            assert!(
                s.chars().all(|c| ('a'..='c').contains(&c)),
                "bad char: {s:?}"
            );
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::for_case(2);
        for _ in 0..1000 {
            let v = crate::Strategy::generate(&(5u64..10), &mut rng);
            assert!((5..10).contains(&v));
            let w = crate::Strategy::generate(&(3usize..=4), &mut rng);
            assert!((3..=4).contains(&w));
        }
    }

    #[test]
    fn deterministic_per_case() {
        let a = crate::Strategy::generate(
            &prop::collection::vec(any::<u8>(), 0..32),
            &mut crate::TestRng::for_case(7),
        );
        let b = crate::Strategy::generate(
            &prop::collection::vec(any::<u8>(), 0..32),
            &mut crate::TestRng::for_case(7),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn normal_f64_is_normal() {
        let mut rng = crate::TestRng::for_case(3);
        for _ in 0..1000 {
            let v = crate::Strategy::generate(&prop::num::f64::NORMAL, &mut rng);
            assert!(v.is_normal(), "{v} should be normal");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_supports_both_param_forms(
            xs in prop::collection::vec(0u32..50, 0..10),
            flag: bool,
            label in "[a-b]{2}",
        ) {
            prop_assert!(xs.iter().all(|&x| x < 50));
            prop_assert_eq!(label.len(), 2);
            let _ = flag;
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![
            (0u32..10).prop_map(|x| x as u64),
            (100u32..110).prop_map(|x| x as u64),
        ]) {
            prop_assert!(v < 10 || (100..110).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "proptest: case")]
    fn failing_assert_reports_case() {
        crate::run_proptest(&ProptestConfig::with_cases(3), |_rng| {
            prop_assert!(1 == 2, "math still works");
            Ok(())
        });
    }
}
