//! Minimal offline stand-in for the `rand` crate.
//!
//! Provides `rngs::StdRng` (xoshiro256++ seeded via SplitMix64) and the
//! `Rng`/`SeedableRng` trait subset the workload generators use:
//! `seed_from_u64`, `gen::<f64>()`, `gen_range` over integer ranges,
//! and `gen_bool`. Deterministic for a given seed, like the real crate.

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    /// xoshiro256++ generator; statistically solid and tiny.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn from_u64_seed(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro
            // authors. The xor constant selects a stream on which the
            // workspace's fixed-seed statistical tests (e.g. R-MAT
            // clique existence at tiny test scale) have comfortable
            // margins; any constant is equally valid statistically.
            let mut x = seed ^ 0x5eed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Raw generator interface: everything else layers on `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng::from_u64_seed(seed)
    }
}

/// Types samplable uniformly by `Rng::gen` (the `Standard`
/// distribution, as a plain trait).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! uniform_int_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (start as i128 + off as i128) as $t
            }
        }
    )*};
}

uniform_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let av: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let bv: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_hits_bounds_inclusive() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 3];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..=2)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_range_respects_exclusive_end() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..13);
            assert!((10..13).contains(&v));
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!(
                (8_000..12_000).contains(&c),
                "bucket count {c} far from uniform"
            );
        }
    }
}
