//! HAMR — a dataflow-based, in-memory big-data engine.
//!
//! This facade crate re-exports the workspace members so downstream
//! users can depend on a single crate:
//!
//! * [`core`] — the flowlet dataflow engine (the paper's contribution),
//! * [`mapred`] — the Hadoop-style disk-based MapReduce baseline,
//! * [`dfs`] / [`simdisk`] / [`simnet`] — the simulated cluster substrates,
//! * [`kvstore`] — the distributed in-memory key-value store component,
//! * [`codec`] — typed binary encoding for keys and values,
//! * [`trace`] — structured event tracing, latency histograms, and
//!   Chrome-trace timeline export,
//! * [`workloads`] — the eight paper benchmarks and their data generators.
//!
//! See `examples/quickstart.rs` for a 30-line WordCount.

pub use hamr_codec as codec;
pub use hamr_core as core;
pub use hamr_dfs as dfs;
pub use hamr_kvstore as kvstore;
pub use hamr_mapred as mapred;
pub use hamr_simdisk as simdisk;
pub use hamr_simnet as simnet;
pub use hamr_trace as trace;
pub use hamr_workloads as workloads;

/// Crate version, for diagnostics.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
