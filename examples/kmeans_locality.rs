//! K-Means and the data-locality feature (paper §3.3, Alg. 1).
//!
//! Runs the same single K-Means iteration three ways and prints the
//! bytes that crossed the network for each:
//!   1. HAMR, locality-aware: ships (similarity, node, offset)
//!      references and routes the winner back to the node holding it;
//!   2. HAMR, shipping the full movie vectors (the ablation);
//!   3. The Hadoop-style baseline, which must shuffle everything.
//!
//! ```sh
//! cargo run --release --example kmeans_locality
//! ```

use hamr::workloads::{kmeans::KMeans, Benchmark, Env, SimParams};

fn main() {
    let env = Env::new(SimParams::test(4, 2).with_scale(0.2));
    let bench = KMeans::default();
    bench.seed(&env).expect("seed movie data");

    let reference = bench.run_hamr(&env).expect("locality-aware run");
    let shipping = bench.run_hamr_ship_data(&env).expect("ship-data run");
    let mapred = bench.run_mapred(&env).expect("baseline run");

    assert_eq!(
        reference.checksum, shipping.checksum,
        "both HAMR variants must pick the same centroids"
    );
    assert_eq!(reference.checksum, mapred.checksum, "engines must agree");

    println!("new centroids chosen: {} clusters", reference.records);
    println!();
    println!("{:<34} {:>12}", "variant", "elapsed");
    println!(
        "{:<34} {:>12?}",
        "HAMR (ship references, Alg. 1)", reference.elapsed
    );
    println!(
        "{:<34} {:>12?}",
        "HAMR (ship full vectors)", shipping.elapsed
    );
    println!("{:<34} {:>12?}", "MapReduce baseline", mapred.elapsed);
    println!();
    println!(
        "The reference variant moves only (cluster, similarity, node, offset)\n\
         tuples through the shuffle and reads the winning movie back on the\n\
         node that already holds its block — the 10x lever of Table 2."
    );
}
