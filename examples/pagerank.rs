//! Iterative PageRank with in-memory state between jobs (paper Alg. 2).
//!
//! Iteration 1 builds each page's adjacency into the distributed KV
//! store; later iterations run entirely from memory — no disk IO and
//! no job-chain barrier, which is where HAMR's 13.6x over Hadoop comes
//! from on this workload.
//!
//! ```sh
//! cargo run --example pagerank
//! ```

use hamr::workloads::{pagerank::PageRank, Benchmark, Env, SimParams};

fn main() {
    let env = Env::new(SimParams::test(4, 2).with_scale(0.05));
    let bench = PageRank {
        pages: 2_000,
        max_out_links: 6,
        iterations: 4,
        resident: true,
    };
    bench.seed(&env).expect("seed web graph");

    println!("running {} iterations of PageRank on both engines...", 4);
    let hamr = bench.run_hamr(&env).expect("hamr");
    let mapred = bench.run_mapred(&env).expect("mapred");

    println!("pages ranked:       {}", hamr.records);
    println!("results identical:  {}", hamr.checksum == mapred.checksum);
    println!(
        "hamr elapsed:       {:?} (1 job/iteration, state in memory)",
        hamr.elapsed
    );
    println!(
        "mapred elapsed:     {:?} (2 jobs/iteration + adjacency job, state on DFS)",
        mapred.elapsed
    );

    // Peek at the top-ranked pages straight out of the KV store.
    let mut ranks: Vec<(u64, u64)> = Vec::new();
    for node in 0..env.params.nodes {
        env.hamr.kv().shard(node).for_each(|k, v| {
            if k.first() == Some(&b'r') {
                let mut rest = &k[1..];
                let page = <u64 as hamr::codec::Codec>::decode(&mut rest).unwrap();
                let rank = <u64 as hamr::codec::Codec>::from_bytes(v).unwrap();
                ranks.push((page, rank));
            }
        });
    }
    ranks.sort_by_key(|&(_, rank)| std::cmp::Reverse(rank));
    println!("top pages (rank in millionths):");
    for (page, rank) in ranks.iter().take(5) {
        println!("  page {page:>6}  rank {rank}");
    }
}
