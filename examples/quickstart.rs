//! Quickstart: WordCount on a 4-node HAMR cluster in ~30 lines.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use hamr::core::{typed, Cluster, ClusterConfig, Emitter, Exchange, JobBuilder};

fn main() {
    // A 4-node in-process cluster, 2 worker threads per node.
    let cluster = Cluster::new(ClusterConfig::local(4, 2));

    // Job graph: loader -> split map -> partial-reduce sum.
    let mut job = JobBuilder::new("quickstart-wordcount");
    let lines: Vec<String> = [
        "hamr is a dataflow engine",
        "a flowlet is a dataflow phase",
        "data drives the computation",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let loader = job.add_loader("lines", typed::vec_loader(lines));
    let splitter = job.add_map(
        "split",
        typed::map_fn(|_line_no: u64, line: String, out: &mut Emitter| {
            for word in line.split_whitespace() {
                out.emit_t(0, &word.to_string(), &1u64);
            }
        }),
    );
    let counter = job.add_partial_reduce("count", typed::sum_reducer::<String>());
    job.connect(loader, splitter, Exchange::Local);
    job.connect(splitter, counter, Exchange::Hash);
    job.capture_output(counter);

    // Run it and print the counts.
    let result = cluster
        .run(job.build().expect("valid graph"))
        .expect("job runs");
    let mut counts = result.typed_output::<String, u64>(counter);
    counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    println!("word counts ({} unique words):", counts.len());
    for (word, n) in counts {
        println!("  {n:>3}  {word}");
    }
    println!(
        "bins shuffled across nodes: {} ({} bytes)",
        result.metrics.shuffled_messages, result.metrics.shuffled_bytes
    );
}
