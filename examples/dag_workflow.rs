//! A multi-phase DAG workflow — the paper's §3.2 pitch: what takes a
//! *chain of MapReduce jobs* in Hadoop is one HAMR job.
//!
//! The workflow loads a movie-ratings dataset **once** and feeds two
//! analyses from the same loader (the data-reuse case):
//!
//! ```text
//!                     ┌─> per-movie average ─> rating histogram ─┐
//!  loader ─> parser ──┤                                          ├─> captured
//!                     └─> per-user activity ─> top-user report ──┘
//! ```
//!
//! Also prints the Graphviz DOT rendering of the job graph.
//!
//! ```sh
//! cargo run --release --example dag_workflow
//! ```

use hamr::core::{typed, Cluster, ClusterConfig, Emitter, Exchange, JobBuilder};
use hamr::workloads::gen::movies::{mean_rating, movie_lines, parse_movie_line};

fn main() {
    let cluster = Cluster::new(ClusterConfig::local(4, 2));
    let mut job = JobBuilder::new("movie-analytics");

    let lines = movie_lines(5_000, 800, 12, 7);
    let loader = job.add_loader("MovieLoader", typed::vec_loader(lines));

    // One parser feeds both branches (load once, use twice — §3.2).
    let parser = job.add_map(
        "Parser",
        typed::map_fn(|_line_no: u64, line: String, out: &mut Emitter| {
            if let Some((movie, ratings)) = parse_movie_line(&line) {
                // Branch A (port 0): the movie with its mean rating.
                if let Some(avg) = mean_rating(&ratings) {
                    out.emit_t(0, &movie, &avg);
                }
                // Branch B (port 1): one record per (user, rating).
                for (user, rating) in ratings {
                    out.emit_t(1, &user, &u64::from(rating));
                }
            }
        }),
    );

    // Branch A: histogram of average ratings in half-star bins.
    let bin_map = job.add_map(
        "HalfStarBin",
        typed::map_fn(|_movie: u64, avg: f64, out: &mut Emitter| {
            out.emit_t(0, &((avg * 2.0).floor() as u64), &1u64);
        }),
    );
    let histogram = job.add_partial_reduce("Histogram", typed::sum_reducer::<u64>());

    // Branch B: number of ratings per user, keeping only heavy raters.
    let activity = job.add_partial_reduce(
        "UserActivity",
        typed::partial_fn::<u64, u64, u64, _, _, _, _>(
            |_user, _rating| 1,
            |_user, n, _rating| n + 1,
            |_user, a, b| a + b,
            |_ctx, user, n, out: &mut Emitter| {
                if n >= 10 {
                    out.output_t(&user, &n);
                }
            },
        ),
    );

    job.connect(loader, parser, Exchange::Local);
    job.connect(parser, bin_map, Exchange::Local); // port 0
    job.connect(parser, activity, Exchange::Hash); // port 1
    job.connect(bin_map, histogram, Exchange::Hash);
    job.capture_output(histogram);
    job.capture_output(activity);

    let graph = job.build().expect("valid DAG");
    println!("--- job graph (Graphviz DOT) ---");
    println!("{}", graph.to_dot());

    let result = cluster.run(graph).expect("job runs");

    let mut hist = result.typed_output::<u64, u64>(histogram);
    hist.sort();
    println!("--- rating histogram (half-star bins) ---");
    for (bin, count) in hist {
        println!(
            "  [{:.1}, {:.1})  {count:>6}  {}",
            bin as f64 / 2.0,
            (bin + 1) as f64 / 2.0,
            "#".repeat((count / 40).max(1) as usize)
        );
    }

    let heavy = result.typed_output::<u64, u64>(activity);
    println!(
        "--- heavy raters (>= 10 ratings): {} users ---",
        heavy.len()
    );
    println!(
        "--- one loader, two analyses, zero intermediate jobs: {} bins shuffled ---",
        result.metrics.shuffled_messages
    );
}
