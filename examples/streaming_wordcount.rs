//! Streaming WordCount: the same programming model as batch, but over
//! an epoch-punctuated stream — HAMR's "one engine for both layers of
//! the Lambda architecture" claim (paper §1).
//!
//! A stream source emits a burst of log lines per epoch; a windowed
//! partial reduce flushes per-word counts at every epoch boundary.
//!
//! ```sh
//! cargo run --example streaming_wordcount
//! ```

use hamr::core::{stream, typed, Cluster, ClusterConfig, Emitter, Exchange, JobBuilder};

fn main() {
    let cluster = Cluster::new(ClusterConfig::local(3, 2));

    let mut job = JobBuilder::new("streaming-wordcount");
    // Each node produces one burst of lines per epoch, 4 epochs total.
    let source = job.add_stream(
        "log-stream",
        stream::bounded_stream(4, |ctx, epoch, out: &mut Emitter| {
            for i in 0..3u64 {
                let line = format!("epoch{epoch} node{} event{}", ctx.node, i % 2);
                out.emit_t(0, &(epoch * 100 + i), &line);
            }
        }),
    );
    let splitter = job.add_map(
        "split",
        typed::map_fn(|_k: u64, line: String, out: &mut Emitter| {
            for word in line.split_whitespace() {
                out.emit_t(0, &word.to_string(), &1u64);
            }
        }),
    );
    // Windowed aggregation: emits (word, count-in-window) at each
    // epoch boundary, then resets — a tumbling window with no extra
    // code versus the batch version.
    let windowed = job.add_partial_reduce(
        "window-count",
        typed::partial_fn::<String, u64, u64, _, _, _, _>(
            |_w, v| v,
            |_w, acc, v| acc + v,
            |_w, a, b| a + b,
            |_ctx, word, count, out: &mut Emitter| out.output_t(&word, &count),
        ),
    );
    job.connect(source, splitter, Exchange::Local);
    job.connect(splitter, windowed, Exchange::Hash);
    job.capture_output(windowed);

    let result = cluster
        .run(job.build().expect("valid graph"))
        .expect("job runs");
    let mut out = result.typed_output::<String, u64>(windowed);
    out.sort();
    println!("windowed word counts ({} flush records):", out.len());
    for (word, count) in out {
        println!("  {count:>3}  {word}");
    }
}
